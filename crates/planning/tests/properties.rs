//! Property-based tests for the planning kernels' core invariants.

use proptest::prelude::*;
use rtr_geom::GridMap2D;
use rtr_harness::Profiler;
use rtr_planning::search::{dijkstra, weighted_astar, SearchSpace};
use rtr_planning::{blocks_world, SymbolicPlanner};

/// A grid search space over an arbitrary obstacle bitmap (point robot,
/// 4-connected so costs are exact integers).
struct GridSpace {
    map: GridMap2D,
    goal: (i64, i64),
}

impl SearchSpace for GridSpace {
    type Node = (i64, i64);

    fn successors(&self, (x, y): (i64, i64), out: &mut Vec<((i64, i64), f64)>) {
        for (dx, dy) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
            let n = (x + dx, y + dy);
            if self.map.is_free(n.0, n.1) {
                out.push((n, 1.0));
            }
        }
    }

    fn heuristic(&self, (x, y): (i64, i64)) -> f64 {
        ((self.goal.0 - x).abs() + (self.goal.1 - y).abs()) as f64
    }

    fn is_goal(&self, n: (i64, i64)) -> bool {
        n == self.goal
    }
}

fn random_grid(bits: &[bool], side: usize) -> GridMap2D {
    let mut map = GridMap2D::new(side, side, 1.0);
    for (i, &b) in bits.iter().enumerate() {
        if b {
            map.set_occupied(i % side, i / side, true);
        }
    }
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn astar_is_optimal_on_random_grids(
        bits in prop::collection::vec(prop::bool::weighted(0.25), 144),
        sx in 0i64..12, sy in 0i64..12,
        gx in 0i64..12, gy in 0i64..12,
    ) {
        let mut map = random_grid(&bits, 12);
        // Clear start and goal.
        map.set_occupied(sx as usize, sy as usize, false);
        map.set_occupied(gx as usize, gy as usize, false);
        let space = GridSpace { map, goal: (gx, gy) };
        let a = weighted_astar(&space, (sx, sy), 1.0);
        let d = dijkstra(&space, (sx, sy));
        match (a, d) {
            (Some(a), Some(d)) => {
                prop_assert!((a.cost - d.cost).abs() < 1e-9,
                    "A* {} vs Dijkstra {}", a.cost, d.cost);
                prop_assert!(a.expanded <= d.expanded);
                // Path cost at least Manhattan distance.
                prop_assert!(a.cost >= ((gx - sx).abs() + (gy - sy).abs()) as f64 - 1e-9);
            }
            (None, None) => {} // consistently unreachable
            (a, d) => prop_assert!(false, "reachability disagrees: {:?} vs {:?}",
                a.is_some(), d.is_some()),
        }
    }

    #[test]
    fn weighted_astar_respects_suboptimality_bound(
        bits in prop::collection::vec(prop::bool::weighted(0.2), 144),
        weight in 1.0..4.0f64,
    ) {
        let mut map = random_grid(&bits, 12);
        map.set_occupied(0, 0, false);
        map.set_occupied(11, 11, false);
        let space = GridSpace { map, goal: (11, 11) };
        if let (Some(w), Some(opt)) = (
            weighted_astar(&space, (0, 0), weight),
            dijkstra(&space, (0, 0)),
        ) {
            prop_assert!(w.cost <= weight * opt.cost + 1e-9,
                "cost {} exceeds {}x optimal {}", w.cost, weight, opt.cost);
        }
    }

    #[test]
    fn search_paths_are_connected_and_free(
        bits in prop::collection::vec(prop::bool::weighted(0.3), 100),
    ) {
        let mut map = random_grid(&bits, 10);
        map.set_occupied(0, 0, false);
        map.set_occupied(9, 9, false);
        let space = GridSpace { map, goal: (9, 9) };
        if let Some(result) = weighted_astar(&space, (0, 0), 1.0) {
            prop_assert_eq!(result.path[0], (0, 0));
            prop_assert_eq!(*result.path.last().unwrap(), (9, 9));
            for w in result.path.windows(2) {
                let dx = (w[1].0 - w[0].0).abs();
                let dy = (w[1].1 - w[0].1).abs();
                prop_assert_eq!(dx + dy, 1, "non-adjacent step");
            }
            for &(x, y) in &result.path {
                prop_assert!(space.map.is_free(x, y));
            }
        }
    }

    #[test]
    fn blocks_world_plans_validate_for_any_size(n in 1usize..6) {
        let domain = blocks_world(n);
        let mut profiler = Profiler::new();
        let plan = SymbolicPlanner::new(1.5)
            .solve(&domain, &mut profiler, &mut rtr_trace::NullTrace)
            .expect("blocks world is always solvable");
        prop_assert!(domain.validate_plan(&plan.actions));
        // Building an n-tower from the table takes exactly n-1 moves when
        // stacked bottom-up (our planner may use more with the inflated
        // heuristic, but never fewer).
        prop_assert!(plan.actions.len() >= n.saturating_sub(1));
    }
}

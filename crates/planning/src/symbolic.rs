//! `11.sym-blkw` / `12.sym-fext` — STRIPS-style symbolic planning.
//!
//! "In symbolic planning, the problem is represented using high-level,
//! human-readable symbols. ... The problem is ultimately represented as a
//! graph search and the planner computes a sequence of actions to reach
//! the goal state from the initial state." The kernel's two dominant
//! operations are graph search over the state space and *string
//! manipulation inside nodes* — facts here are literal strings
//! (`"On(A,B)"`), matched and rewritten on every expansion, exactly the
//! workload the paper says string-matching accelerators could absorb.
//!
//! Two domains reproduce the paper's:
//! [`blocks_world`] (Fig. 13) and [`firefight`] (Fig. 14, the MIT summer-
//! school challenge). The firefighting domain "has more valid actions"
//! and therefore a higher branching factor — the paper's ~3.2× parallelism
//! observation — which [`SymbolicPlanner`] exposes via per-plan branching
//! statistics and a crossbeam-parallel expansion helper.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use rtr_harness::{HotRegion, Profiler};
use rtr_trace::{MemTrace, SharedTrace};

use crate::search::{weighted_astar_traced, SearchSpace};

/// A ground fact, e.g. `On(A,B)`.
pub type Fact = String;

/// A planning state: the set of facts that hold.
pub type State = BTreeSet<Fact>;

/// A lifted action schema with `?0`, `?1`, … parameter placeholders.
#[derive(Debug, Clone)]
pub struct ActionSchema {
    /// Schema name, e.g. `Move`.
    pub name: &'static str,
    /// Number of parameters.
    pub params: usize,
    /// Require pairwise-distinct parameter bindings.
    pub distinct: bool,
    /// Positive preconditions (patterns).
    pub pre: Vec<String>,
    /// Negative preconditions (patterns that must NOT hold).
    pub npre: Vec<String>,
    /// Added facts (patterns).
    pub add: Vec<String>,
    /// Deleted facts (patterns).
    pub del: Vec<String>,
}

/// A fully instantiated action.
#[derive(Debug, Clone)]
pub struct GroundAction {
    /// Human-readable instance name, e.g. `Move(A,B,Table)`.
    pub name: String,
    pre: Vec<Fact>,
    npre: Vec<Fact>,
    add: Vec<Fact>,
    del: Vec<Fact>,
}

impl GroundAction {
    /// Returns `true` when the action is applicable in `state`.
    pub fn applicable(&self, state: &State) -> bool {
        self.pre.iter().all(|f| state.contains(f)) && self.npre.iter().all(|f| !state.contains(f))
    }

    /// Applies the action (preconditions assumed to hold).
    pub fn apply(&self, state: &State) -> State {
        let mut next = state.clone();
        for f in &self.del {
            next.remove(f);
        }
        for f in &self.add {
            next.insert(f.clone());
        }
        next
    }
}

/// A symbolic planning problem: symbols, schemas, initial state and goal.
#[derive(Debug, Clone)]
pub struct Domain {
    /// Object symbols (e.g. block names, locations).
    pub symbols: Vec<String>,
    /// Action schemas.
    pub schemas: Vec<ActionSchema>,
    /// Facts holding initially.
    pub init: Vec<Fact>,
    /// Facts required in the goal state.
    pub goal: Vec<Fact>,
}

impl Domain {
    /// Grounds every schema over all symbol bindings — the string-heavy
    /// instantiation step.
    pub fn ground(&self) -> Vec<GroundAction> {
        let mut out = Vec::new();
        for schema in &self.schemas {
            let mut binding = vec![0usize; schema.params];
            self.ground_rec(schema, 0, &mut binding, &mut out);
        }
        out
    }

    fn ground_rec(
        &self,
        schema: &ActionSchema,
        depth: usize,
        binding: &mut Vec<usize>,
        out: &mut Vec<GroundAction>,
    ) {
        if depth == schema.params {
            if schema.distinct {
                for i in 0..binding.len() {
                    for j in (i + 1)..binding.len() {
                        if binding[i] == binding[j] {
                            return;
                        }
                    }
                }
            }
            let subst = |pattern: &str| -> Fact {
                let mut fact = pattern.to_owned();
                // Substitute longest placeholders first so ?1 does not
                // clobber ?10.
                for p in (0..schema.params).rev() {
                    fact = fact.replace(&format!("?{p}"), &self.symbols[binding[p]]);
                }
                fact
            };
            let args: Vec<&str> = binding.iter().map(|&i| self.symbols[i].as_str()).collect();
            out.push(GroundAction {
                name: format!("{}({})", schema.name, args.join(",")),
                pre: schema.pre.iter().map(|p| subst(p)).collect(),
                npre: schema.npre.iter().map(|p| subst(p)).collect(),
                add: schema.add.iter().map(|p| subst(p)).collect(),
                del: schema.del.iter().map(|p| subst(p)).collect(),
            });
            return;
        }
        for s in 0..self.symbols.len() {
            binding[depth] = s;
            self.ground_rec(schema, depth + 1, binding, out);
        }
    }

    /// The initial state as a set.
    pub fn initial_state(&self) -> State {
        self.init.iter().cloned().collect()
    }

    /// Returns `true` when `state` satisfies the goal.
    pub fn is_goal(&self, state: &State) -> bool {
        self.goal.iter().all(|f| state.contains(f))
    }

    /// Checks that `plan` is executable from the initial state and reaches
    /// the goal (used by tests and the harness).
    pub fn validate_plan(&self, plan: &[String]) -> bool {
        let actions = self.ground();
        let by_name: BTreeMap<&str, &GroundAction> =
            actions.iter().map(|a| (a.name.as_str(), a)).collect();
        let mut state = self.initial_state();
        for step in plan {
            let Some(action) = by_name.get(step.as_str()) else {
                return false;
            };
            if !action.applicable(&state) {
                return false;
            }
            state = action.apply(&state);
        }
        self.is_goal(&state)
    }
}

/// A solved plan with its search statistics.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Action-instance names in execution order.
    pub actions: Vec<String>,
    /// States expanded by the search.
    pub expanded: u64,
    /// Average number of applicable actions per expanded state — the
    /// branching factor behind the paper's `sym-fext` parallelism claim.
    pub mean_branching: f64,
    /// Ground actions in the domain.
    pub ground_actions: usize,
}

/// Synthetic address regions for the interning trace (see [`MemTrace`]):
/// arena slots sit at `id * 32` (an `Rc<State>` record per state), the
/// interning index at [`IDS_REGION`] in 16 B tree nodes, and interned fact
/// strings at [`FACT_REGION`] in 64 B cells keyed by FNV-1a.
const IDS_REGION: u64 = 1 << 42;
/// Interned-fact string storage (reads during state hashing).
const FACT_REGION: u64 = 1 << 43;
const ARENA_SLOT_BYTES: u64 = 32;
const IDS_NODE_BYTES: u64 = 16;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// State-interning search space: states are arbitrary fact sets, but the
/// search engine requires `Copy` nodes, so states live in an arena and the
/// engine sees `usize` ids. Interning emits into the shared trace cell:
/// a fact-string read per member fact, a tree-node read per index level,
/// and (on a miss) arena-slot + index-node writes.
struct SymbolicSpace<'a, 'c, 'd, T: MemTrace + ?Sized> {
    actions: &'a [GroundAction],
    goal: &'a [Fact],
    arena: RefCell<Vec<Rc<State>>>,
    // BTreeMap keeps interning order-independent of any hash seed — state
    // ids are part of the search's observable behavior.
    ids: RefCell<BTreeMap<Rc<State>, usize>>,
    strings: HotRegion,
    expansions: Cell<u64>,
    applicable_total: Cell<u64>,
    trace: &'c RefCell<&'d mut T>,
}

impl<'a, 'c, 'd, T: MemTrace + ?Sized> SymbolicSpace<'a, 'c, 'd, T> {
    fn new(
        actions: &'a [GroundAction],
        goal: &'a [Fact],
        init: State,
        timed: bool,
        trace: &'c RefCell<&'d mut T>,
    ) -> Self {
        let init = Rc::new(init);
        let space = SymbolicSpace {
            actions,
            goal,
            arena: RefCell::new(vec![init.clone()]),
            ids: RefCell::new(BTreeMap::new()),
            strings: HotRegion::timed(timed),
            expansions: Cell::new(0),
            applicable_total: Cell::new(0),
            trace,
        };
        space.ids.borrow_mut().insert(init, 0);
        space
    }

    fn intern(&self, state: State) -> usize {
        let state = Rc::new(state);
        let traced = self.trace.borrow().enabled();
        let mut h = 0u64;
        if traced {
            let mut t = self.trace.borrow_mut();
            for fact in state.iter() {
                let fh = fnv1a(fact.as_bytes());
                t.read(FACT_REGION + (fh & 0xFFFF) * 64);
                h = h.rotate_left(5) ^ fh;
            }
            // One 16 B node probe per level of the interning index.
            let levels = u64::from(self.ids.borrow().len().max(1).ilog2()) + 1;
            for lvl in 0..levels {
                let node = h.rotate_left(7 * lvl as u32) & 0xF_FFFF;
                t.read(IDS_REGION + node * IDS_NODE_BYTES);
            }
        }
        if let Some(&id) = self.ids.borrow().get(&state) {
            return id;
        }
        let mut arena = self.arena.borrow_mut();
        let id = arena.len();
        arena.push(state.clone());
        self.ids.borrow_mut().insert(state, id);
        if traced {
            let mut t = self.trace.borrow_mut();
            t.write(id as u64 * ARENA_SLOT_BYTES);
            t.write(IDS_REGION + (h & 0xF_FFFF) * IDS_NODE_BYTES);
        }
        id
    }

    fn state(&self, id: usize) -> Rc<State> {
        self.arena.borrow()[id].clone()
    }
}

impl<T: MemTrace + ?Sized> SearchSpace for SymbolicSpace<'_, '_, '_, T> {
    type Node = usize;

    fn successors(&self, node: usize, out: &mut Vec<(usize, f64)>) {
        let state = self.state(node);
        self.expansions.set(self.expansions.get() + 1);
        let start = self.strings.start();
        let mut applicable = 0u64;
        for action in self.actions {
            if action.applicable(&state) {
                applicable += 1;
                let next = action.apply(&state);
                out.push((self.intern(next), 1.0));
            }
        }
        self.strings.add(start);
        self.applicable_total
            .set(self.applicable_total.get() + applicable);
    }

    fn heuristic(&self, node: usize) -> f64 {
        let state = self.state(node);
        self.goal.iter().filter(|f| !state.contains(*f)).count() as f64
    }

    fn is_goal(&self, node: usize) -> bool {
        let state = self.state(node);
        self.goal.iter().all(|f| state.contains(f))
    }
}

/// The symbolic planning kernel.
///
/// # Example
///
/// ```
/// use rtr_planning::{blocks_world, SymbolicPlanner};
/// use rtr_harness::Profiler;
///
/// let domain = blocks_world(3);
/// let mut profiler = Profiler::new();
/// let plan = SymbolicPlanner::new(1.0)
///     .solve(&domain, &mut profiler, &mut rtr_trace::NullTrace)
///     .expect("solvable");
/// assert!(domain.validate_plan(&plan.actions));
/// ```
#[derive(Debug, Clone)]
pub struct SymbolicPlanner {
    /// Goal-count heuristic weight (1.0 ≈ A*; larger is greedier).
    weight: f64,
}

impl SymbolicPlanner {
    /// Creates a planner with the given heuristic weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative.
    pub fn new(weight: f64) -> Self {
        assert!(weight >= 0.0, "weight must be non-negative");
        SymbolicPlanner { weight }
    }

    /// Solves `domain`, returning the plan, or `None` when no plan exists.
    ///
    /// Profiler regions: `grounding` (schema instantiation),
    /// `graph_search` (state-space search minus fact matching) and
    /// `string_ops` (precondition matching + effect rewriting). The
    /// string/search split needs the hot-timing knob
    /// ([`Profiler::timed`]); a plain [`Profiler::new`] keeps the solve
    /// loop free of per-expansion clock reads and attributes the whole
    /// search wall time to `graph_search`.
    ///
    /// With a live `trace` sink the solve additionally emits the state
    /// interning traffic (fact-string reads, index probes, arena writes)
    /// and the search engine's open-list stream; pass
    /// [`rtr_trace::NullTrace`] for an untraced solve.
    pub fn solve<T: MemTrace + ?Sized>(
        &self,
        domain: &Domain,
        profiler: &mut Profiler,
        trace: &mut T,
    ) -> Option<Plan> {
        let actions = profiler.time("grounding", || domain.ground());
        let trace = RefCell::new(trace);
        let space = SymbolicSpace::new(
            &actions,
            &domain.goal,
            domain.initial_state(),
            profiler.hot_timing(),
            &trace,
        );

        let mut engine_trace = SharedTrace::new(&trace);
        let (result, total) = profiler.span(|| {
            weighted_astar_traced(&space, 0usize, self.weight, &mut engine_trace, &mut |&id| {
                id as u64 * ARENA_SLOT_BYTES
            })
        });
        let strings = space.strings.total();
        space.strings.drain_into(profiler, "string_ops");
        profiler.add("graph_search", total.saturating_sub(strings));

        let result = result?;
        // Recover action labels by re-matching consecutive states.
        let mut plan_actions = Vec::with_capacity(result.path.len().saturating_sub(1));
        for w in result.path.windows(2) {
            let from = space.state(w[0]);
            let to = space.state(w[1]);
            let action = actions
                .iter()
                .find(|a| a.applicable(&from) && a.apply(&from) == *to)
                .expect("edge action must exist");
            plan_actions.push(action.name.clone());
        }

        let expansions = space.expansions.get().max(1);
        Some(Plan {
            actions: plan_actions,
            expanded: result.expanded,
            mean_branching: space.applicable_total.get() as f64 / expansions as f64,
            ground_actions: actions.len(),
        })
    }
}

/// Evaluates the applicable-action sets of `states` in parallel with
/// `threads` crossbeam threads.
///
/// "Every action translates into an edge in the graph representation of
/// the problem, and the neighbors of every node at every step can be
/// evaluated in parallel" — this helper is the kernel's parallel neighbor
/// expansion, used by the `sym-fext` parallelism experiment.
pub fn expand_states_parallel(
    actions: &[GroundAction],
    states: &[State],
    threads: usize,
) -> Vec<Vec<usize>> {
    assert!(threads > 0, "need at least one thread");
    let mut results: Vec<Vec<usize>> = vec![Vec::new(); states.len()];
    let chunk = states.len().div_ceil(threads);
    if chunk == 0 {
        return results;
    }
    crossbeam::thread::scope(|scope| {
        for (state_chunk, result_chunk) in states.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move |_| {
                for (state, result) in state_chunk.iter().zip(result_chunk.iter_mut()) {
                    *result = actions
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| a.applicable(state))
                        .map(|(i, _)| i)
                        .collect();
                }
            });
        }
    })
    .expect("worker panicked");
    results
}

/// The paper's Fig. 13 blocks-world domain with `n` blocks.
///
/// Initially every block sits on the table; the goal is the single stack
/// `B1` on `B2` on … on `Bn` (top to bottom).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn blocks_world(n: usize) -> Domain {
    assert!(n > 0, "need at least one block");
    let mut symbols: Vec<String> = (1..=n).map(|i| format!("B{i}")).collect();
    symbols.push("Table".to_owned());

    let mut init: Vec<Fact> = Vec::new();
    for b in 0..n {
        init.push(format!("On(B{},Table)", b + 1));
        init.push(format!("Clear(B{})", b + 1));
        init.push(format!("Block(B{})", b + 1));
    }

    // Goal stack: B1 on B2 on ... on Bn on Table.
    let mut goal: Vec<Fact> = (1..n).map(|i| format!("On(B{},B{})", i, i + 1)).collect();
    goal.push(format!("On(B{n},Table)"));

    let schemas = vec![
        // Move a clear block b from x onto a clear block y.
        ActionSchema {
            name: "Move",
            params: 3,
            distinct: true,
            pre: vec![
                "On(?0,?1)".into(),
                "Clear(?0)".into(),
                "Clear(?2)".into(),
                "Block(?0)".into(),
                "Block(?2)".into(),
            ],
            npre: vec![],
            add: vec!["On(?0,?2)".into(), "Clear(?1)".into()],
            del: vec!["On(?0,?1)".into(), "Clear(?2)".into()],
        },
        // Move a clear block b from block x onto the table.
        ActionSchema {
            name: "MoveToTable",
            params: 2,
            distinct: true,
            pre: vec![
                "On(?0,?1)".into(),
                "Clear(?0)".into(),
                "Block(?0)".into(),
                "Block(?1)".into(),
            ],
            npre: vec![],
            add: vec!["On(?0,Table)".into(), "Clear(?1)".into()],
            del: vec!["On(?0,?1)".into()],
        },
    ];

    Domain {
        symbols,
        schemas,
        init,
        goal,
    }
}

/// The paper's Fig. 14 firefighting domain: a rover carries a quadcopter
/// between locations; the quad refills its tank at the water source `W`,
/// flies over the fire `F`, and must pour water three times
/// (`ExtThree(F)`), recharging between flights.
pub fn firefight() -> Domain {
    let symbols: Vec<String> = ["A", "B", "C", "W", "F"]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();

    let init: Vec<Fact> = vec![
        "Loc(A)".into(),
        "Loc(B)".into(),
        "Loc(C)".into(),
        "Loc(W)".into(),
        "Loc(F)".into(),
        "At(R,A)".into(),
        "OnRob(Q)".into(),
        "BatFull(Q)".into(),
        "EmptyTank(Q)".into(),
        "Poured0(F)".into(),
    ];
    let goal: Vec<Fact> = vec!["ExtThree(F)".into()];

    let mut schemas = vec![
        // The rover drives between locations (carrying the quad if landed).
        ActionSchema {
            name: "MoveToLoc",
            params: 2,
            distinct: true,
            pre: vec!["Loc(?0)".into(), "Loc(?1)".into(), "At(R,?0)".into()],
            npre: vec![],
            add: vec!["At(R,?1)".into()],
            del: vec!["At(R,?0)".into()],
        },
        // Take off from the rover (consumes the battery charge).
        ActionSchema {
            name: "TakeOff",
            params: 1,
            distinct: false,
            pre: vec![
                "Loc(?0)".into(),
                "At(R,?0)".into(),
                "OnRob(Q)".into(),
                "BatFull(Q)".into(),
            ],
            npre: vec![],
            add: vec!["InAir(Q)".into(), "At(Q,?0)".into(), "BatLow(Q)".into()],
            del: vec!["OnRob(Q)".into(), "BatFull(Q)".into()],
        },
        // Fly between locations.
        ActionSchema {
            name: "FlyTo",
            params: 2,
            distinct: true,
            pre: vec![
                "Loc(?0)".into(),
                "Loc(?1)".into(),
                "InAir(Q)".into(),
                "At(Q,?0)".into(),
            ],
            npre: vec![],
            add: vec!["At(Q,?1)".into()],
            del: vec!["At(Q,?0)".into()],
        },
        // Land on the rover (must be co-located).
        ActionSchema {
            name: "Land",
            params: 1,
            distinct: false,
            pre: vec![
                "Loc(?0)".into(),
                "At(R,?0)".into(),
                "At(Q,?0)".into(),
                "InAir(Q)".into(),
            ],
            npre: vec![],
            add: vec!["OnRob(Q)".into()],
            del: vec!["InAir(Q)".into(), "At(Q,?0)".into()],
        },
        // Recharge while docked.
        ActionSchema {
            name: "Charge",
            params: 0,
            distinct: false,
            pre: vec!["OnRob(Q)".into(), "BatLow(Q)".into()],
            npre: vec![],
            add: vec!["BatFull(Q)".into()],
            del: vec!["BatLow(Q)".into()],
        },
        // Fill the tank while docked at the water source (Fig. 14's
        // FillWater: Quad(x), OnRob(x), EmptyTank(x), At(R,W)).
        ActionSchema {
            name: "FillWater",
            params: 0,
            distinct: false,
            pre: vec!["OnRob(Q)".into(), "EmptyTank(Q)".into(), "At(R,W)".into()],
            npre: vec![],
            add: vec!["FullTank(Q)".into()],
            del: vec!["EmptyTank(Q)".into()],
        },
    ];

    // Pour actions advance the extinguish counter.
    for (from, to) in [
        ("Poured0(F)", "Poured1(F)"),
        ("Poured1(F)", "Poured2(F)"),
        ("Poured2(F)", "ExtThree(F)"),
    ] {
        schemas.push(ActionSchema {
            name: match from {
                "Poured0(F)" => "PourWater1",
                "Poured1(F)" => "PourWater2",
                _ => "PourWater3",
            },
            params: 0,
            distinct: false,
            pre: vec![
                "InAir(Q)".into(),
                "At(Q,F)".into(),
                "FullTank(Q)".into(),
                from.into(),
            ],
            npre: vec![],
            add: vec![to.into(), "EmptyTank(Q)".into()],
            del: vec![from.into(), "FullTank(Q)".into()],
        });
    }

    Domain {
        symbols,
        schemas,
        init,
        goal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_trace::{NullTrace, RecordingTrace};

    #[test]
    fn traced_solve_is_bit_identical_and_emits_interning_traffic() {
        let domain = blocks_world(4);
        let mut profiler = Profiler::new();
        let mut rec = RecordingTrace::default();
        let traced = SymbolicPlanner::new(1.0)
            .solve(&domain, &mut profiler, &mut rec)
            .unwrap();
        let plain = SymbolicPlanner::new(1.0)
            .solve(&domain, &mut profiler, &mut NullTrace)
            .unwrap();
        assert_eq!(traced.actions, plain.actions);
        assert_eq!(traced.expanded, plain.expanded);
        // Fact-string reads, index probes and arena-slot writes all show up.
        assert!(rec
            .ops
            .iter()
            .any(|op| !op.is_write && op.addr >= FACT_REGION));
        assert!(rec
            .ops
            .iter()
            .any(|op| op.addr >= IDS_REGION && op.addr < FACT_REGION));
        assert!(rec.ops.iter().any(|op| op.is_write && op.addr < (1 << 40)));
    }

    #[test]
    fn three_block_world_matches_paper_sketch() {
        let domain = blocks_world(3);
        let mut profiler = Profiler::new();
        let plan = SymbolicPlanner::new(1.0)
            .solve(&domain, &mut profiler, &mut NullTrace)
            .unwrap();
        assert!(domain.validate_plan(&plan.actions));
        // Stacking three table blocks takes exactly two moves.
        assert_eq!(plan.actions.len(), 2);
    }

    #[test]
    fn five_block_world_solvable() {
        let domain = blocks_world(5);
        let mut profiler = Profiler::new();
        let plan = SymbolicPlanner::new(1.5)
            .solve(&domain, &mut profiler, &mut NullTrace)
            .unwrap();
        assert!(domain.validate_plan(&plan.actions));
        assert!(plan.actions.len() >= 4);
    }

    #[test]
    fn firefight_plan_pours_three_times() {
        let domain = firefight();
        let mut profiler = Profiler::new();
        let plan = SymbolicPlanner::new(1.0)
            .solve(&domain, &mut profiler, &mut NullTrace)
            .unwrap();
        assert!(domain.validate_plan(&plan.actions));
        let pours = plan
            .actions
            .iter()
            .filter(|a| a.starts_with("PourWater"))
            .count();
        assert_eq!(pours, 3);
        // Refills and recharges are forced between pours.
        assert!(
            plan.actions
                .iter()
                .filter(|a| a.starts_with("FillWater"))
                .count()
                >= 3
        );
        assert!(
            plan.actions
                .iter()
                .filter(|a| a.starts_with("Charge"))
                .count()
                >= 2
        );
    }

    #[test]
    fn fext_branches_wider_than_blkw() {
        // The paper's §V.12 finding: sym-fext has ~3.2x the parallelism
        // because it has more applicable actions per state.
        let mut profiler = Profiler::new();
        let blkw = SymbolicPlanner::new(1.0)
            .solve(&blocks_world(3), &mut profiler, &mut NullTrace)
            .unwrap();
        let fext = SymbolicPlanner::new(1.0)
            .solve(&firefight(), &mut profiler, &mut NullTrace)
            .unwrap();
        assert!(
            fext.mean_branching > blkw.mean_branching,
            "fext {} vs blkw {}",
            fext.mean_branching,
            blkw.mean_branching
        );
    }

    #[test]
    fn invalid_plans_rejected() {
        let domain = blocks_world(3);
        assert!(!domain.validate_plan(&["Move(B1,Table,B9)".to_owned()]));
        assert!(!domain.validate_plan(&["Move(B1,B2,B3)".to_owned()])); // inapplicable
        assert!(!domain.validate_plan(&[])); // goal not satisfied initially
    }

    #[test]
    fn unsolvable_domain_returns_none() {
        let mut domain = blocks_world(2);
        domain.goal.push("On(B1,B9)".to_owned()); // impossible fact
        let mut profiler = Profiler::new();
        assert!(SymbolicPlanner::new(1.0)
            .solve(&domain, &mut profiler, &mut NullTrace)
            .is_none());
    }

    #[test]
    fn grounding_respects_distinctness() {
        let domain = blocks_world(2);
        let actions = domain.ground();
        assert!(actions.iter().all(|a| {
            // No action moves a block onto itself.
            !a.name.contains("(B1,B1") && !a.name.contains(",B1,B1")
        }));
    }

    #[test]
    fn parallel_expansion_matches_serial() {
        let domain = firefight();
        let actions = domain.ground();
        // Collect a few reachable states.
        let mut states = vec![domain.initial_state()];
        for _ in 0..3 {
            let last = states.last().unwrap().clone();
            if let Some(a) = actions.iter().find(|a| a.applicable(&last)) {
                states.push(a.apply(&last));
            }
        }
        let serial = expand_states_parallel(&actions, &states, 1);
        let parallel = expand_states_parallel(&actions, &states, 4);
        assert_eq!(serial, parallel);
        assert!(serial.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn profiler_regions_recorded() {
        let domain = blocks_world(4);
        let mut profiler = Profiler::timed();
        SymbolicPlanner::new(1.0)
            .solve(&domain, &mut profiler, &mut NullTrace)
            .unwrap();
        assert!(profiler.region_calls("grounding") == 1);
        assert!(profiler.region_total("string_ops") > std::time::Duration::ZERO);
    }

    #[test]
    fn hot_timing_off_skips_string_ops_but_keeps_wall_time() {
        let domain = blocks_world(4);
        let mut profiler = Profiler::new();
        SymbolicPlanner::new(1.0)
            .solve(&domain, &mut profiler, &mut NullTrace)
            .unwrap();
        assert_eq!(profiler.region_calls("string_ops"), 0);
        // Aggregate solve wall time is still attributed.
        assert!(profiler.region_calls("graph_search") >= 1);
    }

    #[test]
    fn negative_preconditions_gate_actions() {
        // A domain where an action is blocked while a fact holds.
        let domain = Domain {
            symbols: vec!["D".into()],
            schemas: vec![
                ActionSchema {
                    name: "Open",
                    params: 1,
                    distinct: false,
                    pre: vec!["Door(?0)".into()],
                    npre: vec!["Locked(?0)".into()],
                    add: vec!["Open(?0)".into()],
                    del: vec![],
                },
                ActionSchema {
                    name: "Unlock",
                    params: 1,
                    distinct: false,
                    pre: vec!["Door(?0)".into(), "Locked(?0)".into()],
                    npre: vec![],
                    add: vec![],
                    del: vec!["Locked(?0)".into()],
                },
            ],
            init: vec!["Door(D)".into(), "Locked(D)".into()],
            goal: vec!["Open(D)".into()],
        };
        let mut profiler = Profiler::new();
        let plan = SymbolicPlanner::new(1.0)
            .solve(&domain, &mut profiler, &mut NullTrace)
            .unwrap();
        // Must unlock before opening.
        assert_eq!(
            plan.actions,
            vec!["Unlock(D)".to_owned(), "Open(D)".to_owned()]
        );
        assert!(domain.validate_plan(&plan.actions));
    }

    #[test]
    fn ground_action_application_is_pure() {
        let domain = blocks_world(3);
        let actions = domain.ground();
        let state = domain.initial_state();
        let applicable: Vec<_> = actions.iter().filter(|a| a.applicable(&state)).collect();
        assert!(!applicable.is_empty());
        let snapshot = state.clone();
        let _ = applicable[0].apply(&state);
        assert_eq!(state, snapshot, "apply must not mutate its input");
    }

    #[test]
    fn blocks_world_goal_is_a_tower() {
        let domain = blocks_world(4);
        assert!(domain.goal.contains(&"On(B1,B2)".to_owned()));
        assert!(domain.goal.contains(&"On(B4,Table)".to_owned()));
    }
}

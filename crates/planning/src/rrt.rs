//! `08.rrt` — rapidly-exploring random trees for arm motion planning,
//! plus the shared [`ArmProblem`] definition used by `07.prm`–`10.rrtpp`.
//!
//! RRT "draws random samples and extends a tree from the start
//! configuration towards the goal configuration", collision-checking every
//! extension online. The paper measures collision detection at up to 62 %
//! and nearest-neighbor search at up to 31 % of execution time, with the
//! NN search's irregular accesses producing a 12–22 % L1D miss ratio —
//! both regions are instrumented here, and the NN search can stream its
//! k-d-tree node visits into the cache simulator.

use std::f64::consts::PI;

use rtr_geom::{maps, Aabb2, KdLayout, KdTree, Point2};
use rtr_harness::Profiler;
use rtr_sim::{PlanarArm, SimRng};
use rtr_trace::MemTrace;

/// Degrees of freedom of the paper's arm ("we model a 5-DoF arm
/// manipulator").
pub const DOF: usize = 5;

/// A joint-space configuration of the arm.
pub type Config = [f64; DOF];

/// An arm motion-planning problem instance: the arm, the workspace
/// obstacles (`Map-F` or `Map-C`), and start/goal configurations.
#[derive(Debug, Clone)]
pub struct ArmProblem {
    /// The manipulator.
    pub arm: PlanarArm<DOF>,
    /// Workspace obstacles.
    pub obstacles: Vec<Aabb2>,
    /// Workspace side length (meters).
    pub side: f64,
    /// Start configuration.
    pub start: Config,
    /// Goal configuration.
    pub goal: Config,
    /// Configuration-space distance within which the goal counts as
    /// reached.
    pub goal_tolerance: f64,
    /// Interpolation steps per edge collision check.
    pub edge_steps: usize,
}

impl ArmProblem {
    /// Builds a problem on the given obstacle set with endpoints found by
    /// deterministic rejection sampling (guaranteed collision-free and at
    /// least 2 rad apart in joint space).
    ///
    /// # Panics
    ///
    /// Panics if no valid endpoint pair is found within a generous budget
    /// (indicates an over-constrained workspace).
    pub fn with_random_endpoints(obstacles: Vec<Aabb2>, seed: u64) -> Self {
        let side = maps::ARM_WORKSPACE_SIDE;
        let arm = PlanarArm::new(Point2::new(side * 0.5, side * 0.5), [side * 0.08; DOF]);
        let mut rng = SimRng::seed_from(seed);
        let sample_free = |rng: &mut SimRng| -> Config {
            for _ in 0..100_000 {
                let mut c = [0.0; DOF];
                for v in &mut c {
                    *v = rng.uniform(-PI, PI);
                }
                if !arm.in_collision(&c, &obstacles, side) {
                    return c;
                }
            }
            panic!("workspace too cluttered: no free configuration found");
        };
        let start = sample_free(&mut rng);
        let mut goal = sample_free(&mut rng);
        for _ in 0..100_000 {
            if config_distance(&start, &goal) >= 2.0 {
                break;
            }
            goal = sample_free(&mut rng);
        }
        ArmProblem {
            arm,
            obstacles,
            side,
            start,
            goal,
            goal_tolerance: 0.25,
            edge_steps: 8,
        }
    }

    /// The paper's free workspace `Map-F`.
    pub fn map_f(seed: u64) -> Self {
        ArmProblem::with_random_endpoints(maps::arm_map_f(), seed)
    }

    /// The paper's cluttered workspace `Map-C`.
    pub fn map_c(seed: u64) -> Self {
        ArmProblem::with_random_endpoints(maps::arm_map_c(), seed)
    }

    /// Uniform random configuration.
    pub fn sample(&self, rng: &mut SimRng) -> Config {
        let mut c = [0.0; DOF];
        for v in &mut c {
            *v = rng.uniform(-PI, PI);
        }
        c
    }

    /// Workspace collision check of a single configuration.
    pub fn in_collision(&self, config: &Config) -> bool {
        self.arm.in_collision(config, &self.obstacles, self.side)
    }

    /// Collision check of the straight joint-space motion `from → to`.
    pub fn motion_free(&self, from: &Config, to: &Config) -> bool {
        self.arm
            .motion_free(from, to, &self.obstacles, self.side, self.edge_steps)
    }

    /// Total joint-space length of a path.
    pub fn path_cost(&self, path: &[Config]) -> f64 {
        path.windows(2).map(|w| config_distance(&w[0], &w[1])).sum()
    }

    /// Validates that every edge of `path` is collision-free and that it
    /// connects start to goal (used by tests).
    pub fn path_valid(&self, path: &[Config]) -> bool {
        if path.is_empty() {
            return false;
        }
        let connects = config_distance(&path[0], &self.start) < 1e-9
            && config_distance(path.last().unwrap(), &self.goal) < 1e-9;
        connects && path.windows(2).all(|w| self.motion_free(&w[0], &w[1]))
    }
}

/// Euclidean distance in joint space — the paper's "L2-norm calculations
/// ... to calculate the distance of samples in n-dimension space".
#[inline]
pub fn config_distance(a: &Config, b: &Config) -> f64 {
    let mut sum = 0.0;
    for i in 0..DOF {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum.sqrt()
}

/// Moves `from` toward `to` by at most `step` (joint-space Euclidean).
pub fn steer(from: &Config, to: &Config, step: f64) -> Config {
    let d = config_distance(from, to);
    if d <= step {
        return *to;
    }
    let scale = step / d;
    let mut out = [0.0; DOF];
    for i in 0..DOF {
        out[i] = from[i] + (to[i] - from[i]) * scale;
    }
    out
}

/// Configuration for [`Rrt`] (and, with `neighbor_radius`, for the RRT*
/// variant).
#[derive(Debug, Clone)]
pub struct RrtConfig {
    /// Maximum samples before giving up (the paper's `--samples`).
    pub max_samples: usize,
    /// Extension step ε in joint space (the paper's `--epsilon`).
    pub epsilon: f64,
    /// Probability of sampling the goal instead of uniform (the paper's
    /// `--bias`).
    pub goal_bias: f64,
    /// Neighborhood radius for RRT* rewiring (the paper's `--radius`).
    pub neighbor_radius: f64,
    /// RNG seed.
    pub seed: u64,
    /// RRT*-only refinement budget: once the goal is first connected after
    /// `s` samples, keep refining until `s × factor` samples, then stop.
    /// `None` runs the full `max_samples` budget. The paper observes RRT*
    /// "up to 8×" slower than RRT, i.e. a bounded refinement phase.
    pub star_refine_factor: Option<f64>,
    /// Storage layout of the tree's k-d index. Query results are
    /// bit-identical across layouts; [`KdLayout::NodeLegacy`] preserves
    /// the pointer-chasing arena the paper's miss-ratio analysis assumes.
    pub kd_layout: KdLayout,
}

impl Default for RrtConfig {
    fn default() -> Self {
        RrtConfig {
            max_samples: 20_000,
            epsilon: 0.3,
            goal_bias: 0.05,
            neighbor_radius: 0.9,
            seed: 0,
            star_refine_factor: None,
            kd_layout: KdLayout::default(),
        }
    }
}

/// Result of an RRT-family run.
#[derive(Debug, Clone)]
pub struct RrtResult {
    /// Joint-space path from start to goal.
    pub path: Vec<Config>,
    /// Joint-space path length.
    pub cost: f64,
    /// Samples drawn.
    pub samples: usize,
    /// Tree size at termination.
    pub tree_size: usize,
    /// Nearest-neighbor queries issued.
    pub nn_queries: u64,
    /// Edge/vertex collision checks performed.
    pub collision_checks: u64,
}

#[derive(Debug)]
pub(crate) struct Tree {
    pub nodes: Vec<Config>,
    pub parents: Vec<usize>,
    /// Child adjacency, mirror of `parents`: `children[p]` lists exactly
    /// the ids whose parent is `p` (the root is never its own child).
    /// Kept in sync by `add`/`reparent` so RRT*'s cost propagation can
    /// walk just the rewired subtree instead of scanning the whole arena.
    pub children: Vec<Vec<usize>>,
    pub costs: Vec<f64>,
    pub index: KdTree<DOF>,
}

impl Tree {
    pub fn new_in(layout: KdLayout, root: Config) -> Self {
        let mut index = KdTree::new_in(layout);
        index.insert(root, 0);
        Tree {
            nodes: vec![root],
            parents: vec![0],
            children: vec![Vec::new()],
            costs: vec![0.0],
            index,
        }
    }

    pub fn add(&mut self, config: Config, parent: usize) -> usize {
        let id = self.nodes.len();
        let cost = self.costs[parent] + config_distance(&self.nodes[parent], &config);
        self.nodes.push(config);
        self.parents.push(parent);
        self.children.push(Vec::new());
        self.children[parent].push(id);
        self.costs.push(cost);
        self.index.insert(config, id);
        id
    }

    /// Moves `node` under `new_parent`, keeping the child adjacency in
    /// sync. The caller is responsible for cost bookkeeping.
    pub fn reparent(&mut self, node: usize, new_parent: usize) {
        let old_parent = self.parents[node];
        let slot = self.children[old_parent]
            .iter()
            .position(|&c| c == node)
            .expect("child adjacency out of sync with parents");
        self.children[old_parent].swap_remove(slot);
        self.parents[node] = new_parent;
        self.children[new_parent].push(node);
    }

    pub fn path_to(&self, mut id: usize) -> Vec<Config> {
        let mut path = vec![self.nodes[id]];
        while self.parents[id] != id {
            id = self.parents[id];
            path.push(self.nodes[id]);
        }
        path.reverse();
        path
    }
}

/// The RRT kernel.
///
/// # Example
///
/// ```
/// use rtr_planning::{ArmProblem, Rrt, RrtConfig};
/// use rtr_harness::Profiler;
///
/// let problem = ArmProblem::map_f(1);
/// let mut profiler = Profiler::new();
/// let result = Rrt::new(RrtConfig::default())
///     .plan(&problem, &mut profiler, &mut rtr_trace::NullTrace)
///     .expect("free workspace is solvable");
/// assert!(problem.path_valid(&result.path));
/// ```
#[derive(Debug, Clone)]
pub struct Rrt {
    config: RrtConfig,
}

impl Rrt {
    /// Creates the kernel.
    pub fn new(config: RrtConfig) -> Self {
        Rrt { config }
    }

    /// Grows a tree from `problem.start` until the goal region is reached
    /// or the sample budget is exhausted.
    ///
    /// Profiler regions: `sampling`, `nn_search`, `collision_detection`.
    /// With a live `trace` sink, k-d-tree node visits during NN search are
    /// emitted as reads of 40-byte configurations in an insertion-order
    /// arena ("samples whose values are close could be allocated in
    /// distant memory locations"), and each accepted extension writes its
    /// new arena slot. Pass [`rtr_trace::NullTrace`] for an untraced run.
    pub fn plan<T: MemTrace + ?Sized>(
        &self,
        problem: &ArmProblem,
        profiler: &mut Profiler,
        trace: &mut T,
    ) -> Option<RrtResult> {
        if problem.in_collision(&problem.start) || problem.in_collision(&problem.goal) {
            return None;
        }
        let mut rng = SimRng::seed_from(self.config.seed);
        let mut tree = Tree::new_in(self.config.kd_layout, problem.start);
        let mut nn_queries = 0u64;
        let mut collision_checks = 0u64;

        #[allow(clippy::explicit_counter_loop)] // nn_queries also counts goal checks below
        for sample_idx in 0..self.config.max_samples {
            let sample_start = profiler.hot_start();
            let target = if rng.chance(self.config.goal_bias) {
                problem.goal
            } else {
                problem.sample(&mut rng)
            };
            profiler.hot_add("sampling", sample_start);

            // Nearest neighbor in the tree.
            let nn_start = profiler.hot_start();
            nn_queries += 1;
            let (nearest_id, _) = if trace.enabled() {
                tree.index
                    .nearest_with(&target, |payload| {
                        trace.read(payload as u64 * 40); // 5 × f64 per config
                    })
                    .expect("tree is non-empty")
            } else {
                tree.index.nearest(&target).expect("tree is non-empty")
            };
            profiler.hot_add("nn_search", nn_start);

            // Steer and collision-check the new edge.
            let new_config = steer(&tree.nodes[nearest_id], &target, self.config.epsilon);
            let col_start = profiler.hot_start();
            collision_checks += 1;
            let free = problem.motion_free(&tree.nodes[nearest_id], &new_config);
            profiler.hot_add("collision_detection", col_start);
            if !free {
                continue;
            }
            let new_id = tree.add(new_config, nearest_id);
            if trace.enabled() {
                trace.write(new_id as u64 * 40);
            }

            // Goal connection test.
            if config_distance(&new_config, &problem.goal) <= problem.goal_tolerance {
                let col_start = profiler.hot_start();
                collision_checks += 1;
                let free = problem.motion_free(&new_config, &problem.goal);
                profiler.hot_add("collision_detection", col_start);
                if free {
                    let goal_id = tree.add(problem.goal, new_id);
                    if trace.enabled() {
                        trace.write(goal_id as u64 * 40);
                    }
                    let path = tree.path_to(goal_id);
                    return Some(RrtResult {
                        cost: problem.path_cost(&path),
                        path,
                        samples: sample_idx + 1,
                        tree_size: tree.nodes.len(),
                        nn_queries,
                        collision_checks,
                    });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_trace::{CountingTrace, NullTrace};

    #[test]
    fn solves_free_workspace() {
        let problem = ArmProblem::map_f(1);
        let mut profiler = Profiler::new();
        let r = Rrt::new(RrtConfig::default())
            .plan(&problem, &mut profiler, &mut NullTrace)
            .expect("solvable");
        assert!(problem.path_valid(&r.path));
        assert!(r.cost >= config_distance(&problem.start, &problem.goal) - 1e-9);
    }

    #[test]
    fn solves_cluttered_workspace() {
        let problem = ArmProblem::map_c(2);
        let mut profiler = Profiler::new();
        let r = Rrt::new(RrtConfig {
            max_samples: 50_000,
            ..Default::default()
        })
        .plan(&problem, &mut profiler, &mut NullTrace)
        .expect("map-c should be solvable");
        assert!(problem.path_valid(&r.path));
    }

    #[test]
    fn deterministic_given_seed() {
        let problem = ArmProblem::map_f(3);
        let mut p1 = Profiler::new();
        let mut p2 = Profiler::new();
        let a = Rrt::new(RrtConfig::default())
            .plan(&problem, &mut p1, &mut NullTrace)
            .unwrap();
        let b = Rrt::new(RrtConfig::default())
            .plan(&problem, &mut p2, &mut NullTrace)
            .unwrap();
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn collision_and_nn_are_the_top_regions() {
        let problem = ArmProblem::map_c(4);
        // timed(): region fractions only exist with hot timing on.
        let mut profiler = Profiler::timed();
        Rrt::new(RrtConfig {
            max_samples: 50_000,
            ..Default::default()
        })
        .plan(&problem, &mut profiler, &mut NullTrace)
        .expect("solvable");
        profiler.freeze_total();
        let report = profiler.report();
        let top2: Vec<&str> = report.iter().take(2).map(|r| r.name.as_str()).collect();
        assert!(
            top2.contains(&"collision_detection"),
            "collision not dominant: {top2:?}"
        );
    }

    #[test]
    fn in_collision_endpoint_returns_none() {
        let mut problem = ArmProblem::map_c(5);
        // Force the start into collision by boxing the whole workspace.
        problem.obstacles.push(Aabb2::new(
            Point2::new(0.0, 0.0),
            Point2::new(problem.side, problem.side),
        ));
        let mut profiler = Profiler::new();
        assert!(Rrt::new(RrtConfig::default())
            .plan(&problem, &mut profiler, &mut NullTrace)
            .is_none());
    }

    #[test]
    fn steer_limits_step_size() {
        let a = [0.0; DOF];
        let b = [1.0; DOF];
        let stepped = steer(&a, &b, 0.5);
        assert!((config_distance(&a, &stepped) - 0.5).abs() < 1e-12);
        let close = steer(&a, &[0.1, 0.0, 0.0, 0.0, 0.0], 0.5);
        assert_eq!(close, [0.1, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn traced_run_is_bit_identical_and_emits_nn_visits() {
        // The paper's 12-22 % L1D miss-ratio finding for the NN search is
        // asserted end-to-end in the bench crate's characterization tests;
        // here we check the emission shape and the determinism contract.
        let problem = ArmProblem::map_c(6);
        let mut profiler = Profiler::new();
        let config = RrtConfig {
            max_samples: 5_000,
            ..Default::default()
        };
        let mut counts = CountingTrace::default();
        let traced = Rrt::new(config.clone())
            .plan(&problem, &mut profiler, &mut counts)
            .expect("solvable");
        let plain = Rrt::new(config)
            .plan(&problem, &mut profiler, &mut NullTrace)
            .expect("solvable");
        assert_eq!(traced.cost.to_bits(), plain.cost.to_bits());
        assert_eq!(traced.samples, plain.samples);
        // Every accepted extension writes its arena slot (the root is
        // never written), and NN visits dominate reads.
        assert_eq!(counts.writes, traced.tree_size as u64 - 1);
        assert!(counts.reads > traced.nn_queries);
    }

    #[test]
    fn problem_endpoints_are_free_and_distant() {
        for seed in 0..5 {
            let p = ArmProblem::map_c(seed);
            assert!(!p.in_collision(&p.start));
            assert!(!p.in_collision(&p.goal));
            assert!(config_distance(&p.start, &p.goal) >= 2.0);
        }
    }
}

//! `10.rrtpp` — RRT with shortcut post-processing.
//!
//! Instead of paying RRT*'s rewiring cost, the path produced by plain RRT
//! is post-processed: "two nodes along the path are shortcutted if they
//! can be directly connected to each other; i.e., there are not any
//! obstacles among them" (the paper's Fig. 12, based on the triangle
//! inequality). The paper finds the resulting computation and path cost
//! "lie in between RRT* and the baseline RRT".

use rtr_harness::Profiler;
use rtr_trace::MemTrace;

use crate::rrt::{ArmProblem, Config, Rrt, RrtConfig, RrtResult};

/// Result of an RRT + post-processing run.
#[derive(Debug, Clone)]
pub struct RrtPpResult {
    /// The final (shortcut) path and counters from the underlying RRT.
    pub base: RrtResult,
    /// Path cost before post-processing.
    pub raw_cost: f64,
    /// Shortcuts applied.
    pub shortcuts: u64,
    /// Post-processing passes executed.
    pub passes: u32,
}

/// The RRT-with-post-processing kernel.
///
/// # Example
///
/// ```
/// use rtr_planning::{ArmProblem, RrtConfig, RrtPp};
/// use rtr_harness::Profiler;
///
/// let problem = ArmProblem::map_f(1);
/// let mut profiler = Profiler::new();
/// let result = RrtPp::new(RrtConfig::default(), 4)
///     .plan(&problem, &mut profiler, &mut rtr_trace::NullTrace)
///     .expect("solvable");
/// assert!(result.base.cost <= result.raw_cost + 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct RrtPp {
    config: RrtConfig,
    /// Maximum shortcut passes ("the post-processing step could run for
    /// several iterations to further reduce the path cost").
    max_passes: u32,
}

impl RrtPp {
    /// Creates the kernel with the given RRT configuration and shortcut
    /// pass budget.
    pub fn new(config: RrtConfig, max_passes: u32) -> Self {
        RrtPp { config, max_passes }
    }

    /// Runs RRT then shortcut post-processing.
    ///
    /// Profiler regions: the underlying RRT's (`sampling`, `nn_search`,
    /// `collision_detection`) plus `post_process` for the shortcut phase.
    /// The trace stream is the underlying RRT's plus one 40-byte path-node
    /// read per shortcut candidate pair examined.
    pub fn plan<T: MemTrace + ?Sized>(
        &self,
        problem: &ArmProblem,
        profiler: &mut Profiler,
        trace: &mut T,
    ) -> Option<RrtPpResult> {
        let mut base = Rrt::new(self.config.clone()).plan(problem, profiler, &mut *trace)?;
        let raw_cost = base.cost;

        // Once-per-solve coarse measurement: stays on even when the
        // per-iteration hot-loop timing knob is off.
        let (path, shortcuts, passes, extra_checks) = {
            let tr = &mut *trace;
            profiler.time("post_process", || {
                let mut path = base.path.clone();
                let mut shortcuts = 0u64;
                let mut passes = 0u32;
                let mut extra_checks = 0u64;
                for _ in 0..self.max_passes {
                    passes += 1;
                    let (next, cut, checks) = shortcut_pass(problem, &path, &mut *tr);
                    extra_checks += checks;
                    path = next;
                    shortcuts += cut;
                    if cut == 0 {
                        break; // Converged: no pair can be connected directly.
                    }
                }
                (path, shortcuts, passes, extra_checks)
            })
        };

        base.collision_checks += extra_checks;
        base.cost = problem.path_cost(&path);
        base.path = path;
        Some(RrtPpResult {
            base,
            raw_cost,
            shortcuts,
            passes,
        })
    }
}

/// One greedy shortcut sweep: from each node, jump to the farthest later
/// node directly reachable without collision. Returns the new path, the
/// number of shortcuts, and collision checks spent.
fn shortcut_pass<T: MemTrace + ?Sized>(
    problem: &ArmProblem,
    path: &[Config],
    trace: &mut T,
) -> (Vec<Config>, u64, u64) {
    if path.len() <= 2 {
        return (path.to_vec(), 0, 0);
    }
    let mut out = vec![path[0]];
    let mut shortcuts = 0u64;
    let mut checks = 0u64;
    let mut i = 0usize;
    while i + 1 < path.len() {
        // Farthest j > i+1 with a free straight connection.
        let mut j = i + 1;
        for candidate in ((i + 2)..path.len()).rev() {
            checks += 1;
            if trace.enabled() {
                trace.read(i as u64 * 40);
                trace.read(candidate as u64 * 40);
            }
            if problem.motion_free(&path[i], &path[candidate]) {
                j = candidate;
                break;
            }
        }
        if j > i + 1 {
            shortcuts += 1;
        }
        out.push(path[j]);
        i = j;
    }
    (out, shortcuts, checks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rrt::config_distance;
    use crate::rrtstar::RrtStar;
    use rtr_trace::{CountingTrace, NullTrace};

    #[test]
    fn shortcutting_never_increases_cost() {
        for seed in 0..4 {
            let problem = ArmProblem::map_c(20 + seed);
            let mut profiler = Profiler::new();
            let config = RrtConfig {
                seed,
                max_samples: 50_000,
                ..Default::default()
            };
            if let Some(r) = RrtPp::new(config, 6).plan(&problem, &mut profiler, &mut NullTrace) {
                assert!(r.base.cost <= r.raw_cost + 1e-9);
                assert!(problem.path_valid(&r.base.path));
            }
        }
    }

    #[test]
    fn straight_line_scenario_collapses_to_two_nodes() {
        // In a free workspace the whole path shortcuts to start→goal.
        let problem = ArmProblem::map_f(1);
        let mut profiler = Profiler::new();
        let r = RrtPp::new(RrtConfig::default(), 8)
            .plan(&problem, &mut profiler, &mut NullTrace)
            .expect("solvable");
        assert_eq!(r.base.path.len(), 2, "free space should fully shortcut");
        let direct = config_distance(&problem.start, &problem.goal);
        assert!((r.base.cost - direct).abs() < 1e-9);
    }

    #[test]
    fn cost_lies_between_rrt_and_rrtstar() {
        // The paper's §V.10 finding, averaged over seeds.
        let mut rrt_cost = 0.0;
        let mut pp_cost = 0.0;
        let mut star_cost = 0.0;
        let mut solved = 0;
        for seed in 0..3 {
            let problem = ArmProblem::map_c(30 + seed);
            let mut p = Profiler::new();
            let base_config = RrtConfig {
                seed,
                max_samples: 50_000,
                ..Default::default()
            };
            let (Some(rrt), Some(pp), Some(star)) = (
                Rrt::new(base_config.clone()).plan(&problem, &mut p, &mut NullTrace),
                RrtPp::new(base_config.clone(), 6).plan(&problem, &mut p, &mut NullTrace),
                RrtStar::new(RrtConfig {
                    max_samples: 8_000,
                    ..base_config
                })
                .plan(&problem, &mut p, &mut NullTrace),
            ) else {
                continue;
            };
            solved += 1;
            rrt_cost += rrt.cost;
            pp_cost += pp.base.cost;
            star_cost += star.base.cost;
        }
        assert!(solved >= 2, "not enough solved instances");
        assert!(pp_cost <= rrt_cost + 1e-9, "pp {pp_cost} vs rrt {rrt_cost}");
        // The full star ≤ pp ≤ rrt ordering needs larger RRT* budgets than
        // a unit test affords; the exp_arm_planners experiment reproduces
        // it. Here we assert the robust half: both refinements beat RRT.
        assert!(
            star_cost <= rrt_cost + 1e-9,
            "star {star_cost} vs rrt {rrt_cost}"
        );
    }

    #[test]
    fn post_process_region_is_recorded() {
        let problem = ArmProblem::map_c(40);
        let mut profiler = Profiler::new();
        RrtPp::new(
            RrtConfig {
                max_samples: 50_000,
                ..Default::default()
            },
            4,
        )
        .plan(&problem, &mut profiler, &mut NullTrace)
        .expect("solvable");
        assert!(profiler.region_calls("post_process") == 1);
    }

    #[test]
    fn traced_plan_is_bit_identical_and_adds_shortcut_reads() {
        let problem = ArmProblem::map_c(41);
        let mut profiler = Profiler::new();
        let config = RrtConfig {
            max_samples: 50_000,
            ..Default::default()
        };
        let mut counts = CountingTrace::default();
        let traced = RrtPp::new(config.clone(), 4)
            .plan(&problem, &mut profiler, &mut counts)
            .expect("solvable");
        let plain = RrtPp::new(config, 4)
            .plan(&problem, &mut profiler, &mut NullTrace)
            .expect("solvable");
        assert_eq!(traced.base.cost.to_bits(), plain.base.cost.to_bits());
        assert_eq!(traced.shortcuts, plain.shortcuts);
        // RRT NN visits plus two reads per shortcut candidate pair.
        assert!(counts.reads > 2 * traced.shortcuts);
        assert!(counts.writes > 0);
    }

    #[test]
    fn trivial_paths_pass_through() {
        let problem = ArmProblem::map_f(2);
        let two = vec![problem.start, problem.goal];
        let (out, cuts, _) = shortcut_pass(&problem, &two, &mut NullTrace);
        assert_eq!(out.len(), 2);
        assert_eq!(cuts, 0);
    }
}

//! `05.pp3d` — 3D path planning for a UAV.
//!
//! Same structure as `04.pp2d` with a third dimension: A* over a
//! 26-connected 3D occupancy grid. "We assume the UAV is small and fits in
//! one resolution unit", so collision detection is a single-cell probe and
//! the irregular graph search itself becomes a co-equal bottleneck — the
//! paper highlights "tremendous serialization in both intra-node ... and
//! inter-node" computation and shows a VLDP prefetcher recovering about a
//! third of the data misses, which the traced variant reproduces.

use std::cell::Cell;

use rtr_geom::GridMap3D;
use rtr_harness::{HotRegion, Profiler};
use rtr_trace::MemTrace;

use crate::search::{weighted_astar_traced, SearchSpace};

/// Configuration for [`Pp3d`].
#[derive(Debug, Clone)]
pub struct Pp3dConfig {
    /// Start cell.
    pub start: (usize, usize, usize),
    /// Goal cell.
    pub goal: (usize, usize, usize),
    /// Heuristic inflation (1.0 = optimal A*).
    pub weight: f64,
}

/// Result of a 3D planning run.
#[derive(Debug, Clone)]
pub struct Pp3dResult {
    /// Cell path from start to goal.
    pub path: Vec<(usize, usize, usize)>,
    /// Path cost in meters.
    pub cost: f64,
    /// Nodes expanded by the search.
    pub expanded: u64,
    /// Successor edges generated.
    pub generated: u64,
    /// Single-cell collision probes performed.
    pub collision_checks: u64,
}

struct UavSpace<'a> {
    map: &'a GridMap3D,
    goal: (i64, i64, i64),
    collision: HotRegion,
    collision_checks: Cell<u64>,
}

impl SearchSpace for UavSpace<'_> {
    type Node = (i64, i64, i64);

    fn successors(&self, node: (i64, i64, i64), out: &mut Vec<((i64, i64, i64), f64)>) {
        let res = self.map.resolution();
        let start = self.collision.start();
        let mut checks = 0u64;
        for dz in -1i64..=1 {
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    let next = (node.0 + dx, node.1 + dy, node.2 + dz);
                    checks += 1;
                    if self.map.is_free(next.0, next.1, next.2) {
                        let step = ((dx * dx + dy * dy + dz * dz) as f64).sqrt() * res;
                        out.push((next, step));
                    }
                }
            }
        }
        self.collision.add(start);
        self.collision_checks
            .set(self.collision_checks.get() + checks);
    }

    fn heuristic(&self, node: (i64, i64, i64)) -> f64 {
        let dx = (self.goal.0 - node.0) as f64;
        let dy = (self.goal.1 - node.1) as f64;
        let dz = (self.goal.2 - node.2) as f64;
        (dx * dx + dy * dy + dz * dz).sqrt() * self.map.resolution()
    }

    fn is_goal(&self, node: (i64, i64, i64)) -> bool {
        node == self.goal
    }
}

/// The 3D path-planning kernel.
///
/// # Example
///
/// ```
/// use rtr_planning::{Pp3d, Pp3dConfig};
/// use rtr_geom::GridMap3D;
/// use rtr_harness::Profiler;
///
/// let map = GridMap3D::new(16, 16, 8, 1.0);
/// let config = Pp3dConfig { start: (1, 1, 1), goal: (14, 14, 6), weight: 1.0 };
/// let mut profiler = Profiler::new();
/// let result = Pp3d::new(config)
///     .plan(&map, &mut profiler, &mut rtr_trace::NullTrace)
///     .unwrap();
/// assert_eq!(*result.path.last().unwrap(), (14, 14, 6));
/// ```
#[derive(Debug, Clone)]
pub struct Pp3d {
    config: Pp3dConfig,
}

impl Pp3d {
    /// Creates the kernel.
    pub fn new(config: Pp3dConfig) -> Self {
        Pp3d { config }
    }

    /// Plans a path on `map`; `None` when unreachable or an endpoint is
    /// occupied.
    ///
    /// Profiler regions: `collision_detection` and `graph_search`. The
    /// search replays its open-list operations and each expansion's node
    /// record (16 B in a node arena keyed by cell index) into `trace` —
    /// the irregular pattern VLDP partially covers. Pass
    /// [`rtr_trace::NullTrace`] for an untraced run.
    pub fn plan<T: MemTrace + ?Sized>(
        &self,
        map: &GridMap3D,
        profiler: &mut Profiler,
        trace: &mut T,
    ) -> Option<Pp3dResult> {
        let start = (
            self.config.start.0 as i64,
            self.config.start.1 as i64,
            self.config.start.2 as i64,
        );
        let goal = (
            self.config.goal.0 as i64,
            self.config.goal.1 as i64,
            self.config.goal.2 as i64,
        );
        if map.is_occupied(start.0, start.1, start.2) || map.is_occupied(goal.0, goal.1, goal.2) {
            return None;
        }
        let space = UavSpace {
            map,
            goal,
            collision: HotRegion::timed(profiler.hot_timing()),
            collision_checks: Cell::new(0),
        };

        let (w, h) = (map.width() as u64, map.height() as u64);
        let (result, total) = profiler.span(|| {
            weighted_astar_traced(&space, start, self.config.weight, trace, &mut |n| {
                let cell_index =
                    (n.2.max(0) as u64 * h + n.1.max(0) as u64) * w + n.0.max(0) as u64;
                cell_index * 16
            })
        });
        let collision = space.collision.total();
        space.collision.drain_into(profiler, "collision_detection");
        profiler.add("graph_search", total.saturating_sub(collision));

        result.map(|r| Pp3dResult {
            path: r
                .path
                .iter()
                .map(|&(x, y, z)| (x as usize, y as usize, z as usize))
                .collect(),
            cost: r.cost,
            expanded: r.expanded,
            generated: r.generated,
            collision_checks: space.collision_checks.get(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_geom::maps;
    use rtr_trace::{CountingTrace, NullTrace};

    #[test]
    fn straight_flight_in_open_space() {
        let map = GridMap3D::new(32, 32, 8, 1.0);
        let config = Pp3dConfig {
            start: (2, 16, 4),
            goal: (29, 16, 4),
            weight: 1.0,
        };
        let mut profiler = Profiler::new();
        let r = Pp3d::new(config)
            .plan(&map, &mut profiler, &mut NullTrace)
            .unwrap();
        assert!((r.cost - 27.0).abs() < 1e-9);
    }

    #[test]
    fn flies_over_a_wall() {
        let mut map = GridMap3D::new(32, 32, 8, 1.0);
        // A wall spanning full y and z up to 5.
        for y in 0..32 {
            for z in 0..6 {
                map.set_occupied(16, y, z, true);
            }
        }
        let config = Pp3dConfig {
            start: (2, 16, 1),
            goal: (29, 16, 1),
            weight: 1.0,
        };
        let mut profiler = Profiler::new();
        let r = Pp3d::new(config)
            .plan(&map, &mut profiler, &mut NullTrace)
            .unwrap();
        // Must climb to z >= 6 somewhere.
        assert!(r.path.iter().any(|&(_, _, z)| z >= 6));
    }

    #[test]
    fn campus_map_is_flyable() {
        let map = maps::campus_3d(64, 64, 16, 1.0, 11);
        let config = Pp3dConfig {
            start: (1, 1, 10),
            goal: (62, 62, 10),
            weight: 1.0,
        };
        let mut profiler = Profiler::new();
        let r = Pp3d::new(config).plan(&map, &mut profiler, &mut NullTrace);
        assert!(r.is_some(), "campus airspace should be traversable");
        let r = r.unwrap();
        assert!(r.collision_checks > r.expanded, "26 checks per expansion");
    }

    #[test]
    fn diagonal_moves_cost_more() {
        let map = GridMap3D::new(8, 8, 8, 2.0);
        let config = Pp3dConfig {
            start: (1, 1, 1),
            goal: (2, 2, 2),
            weight: 1.0,
        };
        let mut profiler = Profiler::new();
        let r = Pp3d::new(config)
            .plan(&map, &mut profiler, &mut NullTrace)
            .unwrap();
        assert!((r.cost - 3.0f64.sqrt() * 2.0).abs() < 1e-9);
        assert_eq!(r.path.len(), 2);
    }

    #[test]
    fn occupied_endpoint_returns_none() {
        let mut map = GridMap3D::new(8, 8, 8, 1.0);
        map.set_occupied(1, 1, 1, true);
        let mut profiler = Profiler::new();
        assert!(Pp3d::new(Pp3dConfig {
            start: (1, 1, 1),
            goal: (6, 6, 6),
            weight: 1.0,
        })
        .plan(&map, &mut profiler, &mut NullTrace)
        .is_none());
    }

    #[test]
    fn traced_plan_is_bit_identical_and_emits() {
        // The VLDP miss-reduction finding itself now lives in the bench
        // crate's tracing tests, where the cache simulator may be named;
        // here we only check the emission contract.
        let map = maps::campus_3d(48, 48, 12, 1.0, 11);
        let config = Pp3dConfig {
            start: (1, 1, 8),
            goal: (46, 46, 8),
            weight: 1.0,
        };
        let mut profiler = Profiler::new();
        let mut counts = CountingTrace::default();
        let traced = Pp3d::new(config.clone())
            .plan(&map, &mut profiler, &mut counts)
            .unwrap();
        let plain = Pp3d::new(config)
            .plan(&map, &mut profiler, &mut NullTrace)
            .unwrap();
        assert_eq!(traced.path, plain.path);
        assert_eq!(traced.cost.to_bits(), plain.cost.to_bits());
        assert!(counts.reads > traced.expanded, "open list adds reads");
        assert!(counts.writes > 0);
    }

    #[test]
    fn path_continuity_in_3d() {
        let map = maps::campus_3d(48, 48, 12, 1.0, 5);
        let mut profiler = Profiler::new();
        let r = Pp3d::new(Pp3dConfig {
            start: (1, 1, 8),
            goal: (46, 46, 8),
            weight: 1.5,
        })
        .plan(&map, &mut profiler, &mut NullTrace)
        .unwrap();
        for w in r.path.windows(2) {
            let d = [
                (w[1].0 as i64 - w[0].0 as i64).abs(),
                (w[1].1 as i64 - w[0].1 as i64).abs(),
                (w[1].2 as i64 - w[0].2 as i64).abs(),
            ];
            assert!(d.iter().all(|&x| x <= 1));
            assert!(d.iter().any(|&x| x > 0));
        }
    }
}

//! `07.prm` — probabilistic roadmaps for high-DoF arm planning.
//!
//! PRM "has offline and online phases. In the offline phase, it takes
//! random samples from the configuration space of the robot, then tests
//! whether they are collision-free, and finally connects nearby samples to
//! form a graph. In the online phase, PRM adds the start and goal
//! configurations to the graph, and accomplishes the planning by searching
//! the graph with an algorithm like A*." The paper stresses that only the
//! online phase is on the critical path and that "frequent L2-norm
//! calculations ... to calculate the distance of samples in n-dimension
//! space" are a bottleneck — every distance evaluation here is counted.

use std::cell::Cell;

use rtr_harness::{Pool, Profiler};
use rtr_sim::SimRng;
use rtr_trace::MemTrace;

use crate::rrt::{config_distance, ArmProblem, Config};
use crate::search::{astar_traced, SearchSpace};

/// Configuration for [`Prm`].
#[derive(Debug, Clone)]
pub struct PrmConfig {
    /// Roadmap size (collision-free samples kept).
    pub roadmap_size: usize,
    /// Neighbors each sample attempts to connect to.
    pub neighbors: usize,
    /// RNG seed for the offline sampling.
    pub seed: u64,
    /// Use a k-d tree for the offline neighbor queries instead of the
    /// brute-force scan. Produces the same roadmap (k-nearest is exact);
    /// only the build cost changes — the offline phase "is paid only once
    /// and is done offline", so both strategies ship.
    pub kdtree_build: bool,
    /// Worker threads for the offline neighbor search and edge collision
    /// checks: `1` is the exact legacy sequential path, `0` means one
    /// thread per hardware thread. The roadmap (and every counter) is
    /// bit-identical for every setting: sampling and the edge-commit loop
    /// stay sequential, only the pure per-node candidate/collision
    /// computations fan out.
    pub threads: usize,
}

impl Default for PrmConfig {
    fn default() -> Self {
        PrmConfig {
            roadmap_size: 1500,
            neighbors: 10,
            seed: 0,
            kdtree_build: false,
            threads: 1,
        }
    }
}

/// Result of an online PRM query.
#[derive(Debug, Clone)]
pub struct PrmResult {
    /// Joint-space path from start to goal.
    pub path: Vec<Config>,
    /// Joint-space path length.
    pub cost: f64,
    /// A* expansions during the online search.
    pub expanded: u64,
    /// L2-norm evaluations during the online phase (connection + search).
    pub l2_evals: u64,
}

/// A built roadmap: the product of PRM's offline phase, reusable across
/// queries (that is the point of PRM — "it is paid only once and is done
/// offline").
#[derive(Debug, Clone)]
pub struct Roadmap {
    nodes: Vec<Config>,
    adjacency: Vec<Vec<(usize, f64)>>,
    /// Collision checks spent building (offline statistics). Counted per
    /// candidate pair surviving the adjacency dedup — identical across
    /// thread counts and build strategies.
    pub offline_collision_checks: u64,
    /// Actual `motion_free` interpolation sweeps performed while building.
    /// The parallel build memoizes each undirected pair, so mutual k-NN
    /// candidates cost one sweep instead of two: this counter is what the
    /// dedup saves, while `offline_collision_checks` stays legacy-exact.
    pub motion_free_evals: u64,
    /// Edges in the roadmap.
    pub edge_count: usize,
}

impl Roadmap {
    /// Number of roadmap vertices.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the roadmap has no vertices.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Neighbors `(vertex, edge cost)` of vertex `i`, in insertion order.
    pub fn neighbors(&self, i: usize) -> &[(usize, f64)] {
        &self.adjacency[i]
    }
}

/// Online search space: roadmap vertices plus virtual start (`len`) and
/// goal (`len + 1`) nodes with their connection edges.
struct QuerySpace<'a> {
    roadmap: &'a Roadmap,
    start_edges: &'a [(usize, f64)],
    goal_edges_rev: &'a [(usize, f64)],
    start: Config,
    goal: Config,
    l2_evals: &'a Cell<u64>,
}

const START_ID: usize = usize::MAX - 1;
const GOAL_ID: usize = usize::MAX;

impl QuerySpace<'_> {
    fn config_of(&self, id: usize) -> Config {
        match id {
            START_ID => self.start,
            GOAL_ID => self.goal,
            _ => self.roadmap.nodes[id],
        }
    }
}

impl SearchSpace for QuerySpace<'_> {
    type Node = usize;

    fn successors(&self, node: usize, out: &mut Vec<(usize, f64)>) {
        match node {
            START_ID => out.extend_from_slice(self.start_edges),
            GOAL_ID => {}
            _ => {
                out.extend_from_slice(&self.roadmap.adjacency[node]);
                // Edges into the goal from its connected roadmap nodes.
                for &(rm, cost) in self.goal_edges_rev {
                    if rm == node {
                        out.push((GOAL_ID, cost));
                    }
                }
            }
        }
    }

    fn heuristic(&self, node: usize) -> f64 {
        self.l2_evals.set(self.l2_evals.get() + 1);
        config_distance(&self.config_of(node), &self.goal)
    }

    fn is_goal(&self, node: usize) -> bool {
        node == GOAL_ID
    }
}

/// The PRM kernel.
///
/// # Example
///
/// ```
/// use rtr_planning::{ArmProblem, Prm, PrmConfig};
/// use rtr_harness::Profiler;
///
/// let problem = ArmProblem::map_f(1);
/// let mut profiler = Profiler::new();
/// let prm = Prm::new(PrmConfig { roadmap_size: 400, ..Default::default() });
/// let roadmap = prm.build(&problem, &mut profiler);
/// let result = prm
///     .query(&problem, &roadmap, &mut profiler, &mut rtr_trace::NullTrace)
///     .expect("solvable");
/// assert!(problem.path_valid(&result.path));
/// ```
#[derive(Debug, Clone)]
pub struct Prm {
    config: PrmConfig,
}

impl Prm {
    /// Creates the kernel.
    pub fn new(config: PrmConfig) -> Self {
        Prm { config }
    }

    /// Offline phase: samples the configuration space and connects
    /// neighbors. Profiler region: `offline_build`.
    pub fn build(&self, problem: &ArmProblem, profiler: &mut Profiler) -> Roadmap {
        profiler.time("offline_build", || {
            let mut rng = SimRng::seed_from(self.config.seed);
            let mut collision_checks = 0u64;

            // Rejection-sample collision-free vertices.
            let mut nodes: Vec<Config> = Vec::with_capacity(self.config.roadmap_size);
            while nodes.len() < self.config.roadmap_size {
                let candidate = problem.sample(&mut rng);
                collision_checks += 1;
                if !problem.in_collision(&candidate) {
                    nodes.push(candidate);
                }
            }

            // Connect each vertex to its k nearest. Brute force by
            // default (offline cost the paper explicitly discounts); a
            // k-d-tree variant is available for large roadmaps. Both the
            // k-nearest searches and the per-edge collision checks are
            // pure functions of the sampled nodes, so they fan out over
            // the pool; the edge-commit loop below stays sequential, which
            // keeps the adjacency lists and counters in legacy order.
            let index = self.config.kdtree_build.then(|| {
                let items: Vec<(Config, usize)> =
                    nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
                rtr_geom::KdTree::<{ crate::rrt::DOF }>::build_balanced(&items)
            });
            let k = self.config.neighbors;
            let pool = Pool::new(self.config.threads);
            let near_of = |i: usize, node: &Config| -> Vec<(usize, f64)> {
                match &index {
                    Some(tree) => tree
                        .k_nearest(node, k + 1)
                        .into_iter()
                        .map(|(j, d2)| (j, d2.sqrt()))
                        .filter(|&(j, _)| j != i)
                        .take(k)
                        .collect(),
                    None => {
                        let mut all: Vec<(usize, f64)> = (0..nodes.len())
                            .filter(|&j| j != i)
                            .map(|j| (j, config_distance(node, &nodes[j])))
                            .collect();
                        all.sort_by(|a, b| a.1.total_cmp(&b.1));
                        all.truncate(k);
                        all
                    }
                }
            };
            let mut adjacency: Vec<Vec<(usize, f64)>> = vec![Vec::new(); nodes.len()];
            let mut edge_count = 0usize;
            let mut motion_free_evals = 0u64;
            let mut commit = |i: usize,
                              j: usize,
                              dist: f64,
                              free: bool,
                              adjacency: &mut Vec<Vec<(usize, f64)>>| {
                if adjacency[i].iter().any(|&(n, _)| n == j) {
                    return;
                }
                collision_checks += 1;
                if free {
                    adjacency[i].push((j, dist));
                    adjacency[j].push((i, dist));
                    edge_count += 1;
                }
            };
            if pool.threads() == 1 {
                // Legacy path: collision checks stay lazy, so pairs the
                // dedup skips are never evaluated.
                for i in 0..nodes.len() {
                    for (j, dist) in near_of(i, &nodes[i]) {
                        let skip = adjacency[i].iter().any(|&(n, _)| n == j);
                        if !skip {
                            motion_free_evals += 1;
                            let free = problem.motion_free(&nodes[i], &nodes[j]);
                            commit(i, j, dist, free, &mut adjacency);
                        }
                    }
                }
            } else {
                // Parallel path: candidate search fans out first, then the
                // distinct undirected pairs (first-encounter order) are
                // collision-checked across the pool exactly once each —
                // mutual k-NN candidates share one `motion_free` sweep
                // instead of paying one per direction. The sequential
                // commit loop replays the legacy iteration order against
                // the memoized verdicts, so adjacency lists, edge count,
                // and the collision-check counter match the legacy path
                // exactly (a blocked mutual pair is still *counted* twice,
                // as the lazy path would, but evaluated once).
                let cands: Vec<Vec<(usize, f64)>> = match &index {
                    // With a k-d index the whole candidate generation is
                    // one batched fan-out: the tree chunks the node list
                    // over the pool itself (fixed chunking, results in
                    // query order) instead of paying one pool task per
                    // node. The per-node transformation below mirrors
                    // `near_of`'s k-d branch expression for expression,
                    // so the candidate lists are bit-identical to it.
                    Some(tree) => tree
                        .batch_k_nearest(&nodes, k + 1, &pool)
                        .into_iter()
                        .enumerate()
                        .map(|(i, found)| {
                            found
                                .into_iter()
                                .map(|(j, d2)| (j, d2.sqrt()))
                                .filter(|&(j, _)| j != i)
                                .take(k)
                                .collect()
                        })
                        .collect(),
                    None => pool.par_map(&nodes, |i, node| near_of(i, node)),
                };
                let mut seen = std::collections::BTreeSet::new();
                let mut pairs: Vec<(usize, usize)> = Vec::new();
                for (i, cand) in cands.iter().enumerate() {
                    for &(j, _) in cand {
                        let key = (i.min(j), i.max(j));
                        if seen.insert(key) {
                            pairs.push(key);
                        }
                    }
                }
                motion_free_evals += pairs.len() as u64;
                let verdicts: Vec<bool> = pool.par_map(&pairs, |_, &(a, b)| {
                    problem.motion_free(&nodes[a], &nodes[b])
                });
                let free_of: std::collections::BTreeMap<(usize, usize), bool> =
                    pairs.iter().copied().zip(verdicts).collect();
                for (i, cand) in cands.iter().enumerate() {
                    for &(j, dist) in cand {
                        let free = free_of[&(i.min(j), i.max(j))];
                        commit(i, j, dist, free, &mut adjacency);
                    }
                }
            }

            Roadmap {
                nodes,
                adjacency,
                offline_collision_checks: collision_checks,
                motion_free_evals,
                edge_count,
            }
        })
    }

    /// Online phase: connects start/goal to the roadmap and runs A*.
    /// Profiler regions: `online_connect` and `graph_search`.
    ///
    /// Returns `None` when start/goal cannot be connected or no roadmap
    /// path exists (e.g. the roadmap is too sparse for `Map-C`'s narrow
    /// passages).
    ///
    /// The online phase emits into `trace`: every k-NN candidate visit
    /// during connection reads that vertex's 40 B configuration record
    /// (five `f64` joints), and the A* over the roadmap replays its
    /// open-list operations plus a record read per touched vertex. Pass
    /// [`rtr_trace::NullTrace`] for an untraced query.
    pub fn query<T: MemTrace + ?Sized>(
        &self,
        problem: &ArmProblem,
        roadmap: &Roadmap,
        profiler: &mut Profiler,
        trace: &mut T,
    ) -> Option<PrmResult> {
        if roadmap.is_empty()
            || problem.in_collision(&problem.start)
            || problem.in_collision(&problem.goal)
        {
            return None;
        }
        let l2_evals = Cell::new(0u64);

        let connect = |config: &Config, l2: &Cell<u64>, trace: &mut T| -> Vec<(usize, f64)> {
            let mut candidates: Vec<(usize, f64)> = roadmap
                .nodes
                .iter()
                .enumerate()
                .map(|(j, n)| {
                    l2.set(l2.get() + 1);
                    if trace.enabled() {
                        trace.read(j as u64 * 40);
                    }
                    (j, config_distance(config, n))
                })
                .collect();
            candidates.sort_by(|a, b| a.1.total_cmp(&b.1));
            candidates
                .into_iter()
                .take(self.config.neighbors * 2)
                .filter(|&(j, _)| problem.motion_free(config, &roadmap.nodes[j]))
                .take(self.config.neighbors)
                .collect()
        };
        let (start_edges, goal_edges_rev) = {
            let tr = &mut *trace;
            profiler.time("online_connect", || {
                (
                    connect(&problem.start, &l2_evals, &mut *tr),
                    connect(&problem.goal, &l2_evals, &mut *tr),
                )
            })
        };
        if start_edges.is_empty() || goal_edges_rev.is_empty() {
            return None;
        }

        let space = QuerySpace {
            roadmap,
            start_edges: &start_edges,
            goal_edges_rev: &goal_edges_rev,
            start: problem.start,
            goal: problem.goal,
            l2_evals: &l2_evals,
        };
        let result = profiler.time("graph_search", || {
            astar_traced(&space, START_ID, trace, &mut |&id| match id {
                START_ID => 1 << 36,
                GOAL_ID => (1 << 36) + 40,
                _ => id as u64 * 40,
            })
        })?;

        let path: Vec<Config> = result.path.iter().map(|&id| space.config_of(id)).collect();
        Some(PrmResult {
            cost: problem.path_cost(&path),
            path,
            expanded: result.expanded,
            l2_evals: l2_evals.get(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_trace::{NullTrace, RecordingTrace};

    #[test]
    fn builds_connected_roadmap_in_free_space() {
        let problem = ArmProblem::map_f(1);
        let mut profiler = Profiler::new();
        let roadmap = Prm::new(PrmConfig {
            roadmap_size: 300,
            ..Default::default()
        })
        .build(&problem, &mut profiler);
        assert_eq!(roadmap.len(), 300);
        assert!(roadmap.edge_count > 300, "roadmap too sparse");
    }

    #[test]
    fn query_solves_free_space() {
        let problem = ArmProblem::map_f(1);
        let mut profiler = Profiler::new();
        let prm = Prm::new(PrmConfig {
            roadmap_size: 400,
            ..Default::default()
        });
        let roadmap = prm.build(&problem, &mut profiler);
        let r = prm
            .query(&problem, &roadmap, &mut profiler, &mut NullTrace)
            .expect("solvable");
        assert!(problem.path_valid(&r.path));
        assert!(r.l2_evals > 0);
    }

    #[test]
    fn query_solves_cluttered_space() {
        let problem = ArmProblem::map_c(2);
        let mut profiler = Profiler::new();
        let prm = Prm::new(PrmConfig {
            roadmap_size: 1200,
            neighbors: 12,
            seed: 3,
            kdtree_build: false,
            threads: 1,
        });
        let roadmap = prm.build(&problem, &mut profiler);
        let r = prm.query(&problem, &roadmap, &mut profiler, &mut NullTrace);
        assert!(r.is_some(), "Map-C query failed with a 1200-node roadmap");
        assert!(problem.path_valid(&r.unwrap().path));
    }

    #[test]
    fn roadmap_is_reusable_across_queries() {
        let mut problem = ArmProblem::map_f(4);
        let mut profiler = Profiler::new();
        let prm = Prm::new(PrmConfig {
            roadmap_size: 400,
            ..Default::default()
        });
        let roadmap = prm.build(&problem, &mut profiler);
        let first = prm
            .query(&problem, &roadmap, &mut profiler, &mut NullTrace)
            .unwrap();
        // New query on the same roadmap with swapped endpoints.
        std::mem::swap(&mut problem.start, &mut problem.goal);
        let second = prm
            .query(&problem, &roadmap, &mut profiler, &mut NullTrace)
            .unwrap();
        assert!((first.cost - second.cost).abs() < 1e-9, "symmetric query");
    }

    #[test]
    fn offline_dominates_online() {
        // "The offline process could be significantly lengthy, but it is
        // paid only once": building must cost far more than a query.
        let problem = ArmProblem::map_f(5);
        let mut profiler = Profiler::new();
        let prm = Prm::new(PrmConfig {
            roadmap_size: 600,
            ..Default::default()
        });
        let roadmap = prm.build(&problem, &mut profiler);
        prm.query(&problem, &roadmap, &mut profiler, &mut NullTrace)
            .unwrap();
        let offline = profiler.region_total("offline_build");
        let online =
            profiler.region_total("online_connect") + profiler.region_total("graph_search");
        assert!(
            offline > online * 2,
            "offline {offline:?} vs online {online:?}"
        );
    }

    #[test]
    fn kdtree_build_produces_equivalent_roadmap() {
        let problem = ArmProblem::map_f(8);
        let mut profiler = Profiler::new();
        let base_config = PrmConfig {
            roadmap_size: 400,
            neighbors: 8,
            seed: 4,
            kdtree_build: false,
            threads: 1,
        };
        let brute = Prm::new(base_config.clone()).build(&problem, &mut profiler);
        let kd = Prm::new(PrmConfig {
            kdtree_build: true,
            ..base_config
        })
        .build(&problem, &mut profiler);
        // Same samples (same seed), same k-nearest sets → same edges.
        assert_eq!(brute.len(), kd.len());
        assert_eq!(brute.edge_count, kd.edge_count);
        // And queries agree.
        let prm = Prm::new(PrmConfig {
            kdtree_build: true,
            roadmap_size: 400,
            neighbors: 8,
            seed: 4,
            threads: 1,
        });
        let a = prm
            .query(&problem, &brute, &mut profiler, &mut NullTrace)
            .unwrap();
        let b = prm
            .query(&problem, &kd, &mut profiler, &mut NullTrace)
            .unwrap();
        assert!((a.cost - b.cost).abs() < 1e-9);
    }

    #[test]
    fn parallel_build_dedups_mutual_pairs() {
        let problem = ArmProblem::map_c(9);
        let cfg = |threads| PrmConfig {
            roadmap_size: 300,
            neighbors: 8,
            seed: 5,
            kdtree_build: false,
            threads,
        };
        let mut profiler = Profiler::new();
        let seq = Prm::new(cfg(1)).build(&problem, &mut profiler);
        let par = Prm::new(cfg(4)).build(&problem, &mut profiler);
        // The roadmap and the legacy counter are bit-identical...
        assert_eq!(seq.len(), par.len());
        assert_eq!(seq.edge_count, par.edge_count);
        assert_eq!(
            seq.offline_collision_checks, par.offline_collision_checks,
            "collision-check counter must not depend on thread count"
        );
        for i in 0..seq.len() {
            assert_eq!(seq.neighbors(i), par.neighbors(i), "adjacency at {i}");
        }
        // ...while the deduped build sweeps each undirected pair once: on
        // a cluttered map some mutual candidates are blocked, which the
        // lazy sequential path pays for twice.
        assert!(
            par.motion_free_evals < seq.motion_free_evals,
            "dedup saved nothing: {} vs {}",
            par.motion_free_evals,
            seq.motion_free_evals
        );
    }

    #[test]
    fn batched_kdtree_build_matches_sequential_for_all_thread_counts() {
        let problem = ArmProblem::map_f(10);
        let cfg = |threads| PrmConfig {
            roadmap_size: 300,
            neighbors: 8,
            seed: 6,
            kdtree_build: true,
            threads,
        };
        let mut profiler = Profiler::new();
        let seq = Prm::new(cfg(1)).build(&problem, &mut profiler);
        for threads in [2, 4, 8] {
            let par = Prm::new(cfg(threads)).build(&problem, &mut profiler);
            assert_eq!(seq.edge_count, par.edge_count, "threads={threads}");
            assert_eq!(
                seq.offline_collision_checks, par.offline_collision_checks,
                "threads={threads}"
            );
            for i in 0..seq.len() {
                let a = seq.neighbors(i);
                let b = par.neighbors(i);
                assert_eq!(a.len(), b.len(), "adjacency len at {i}, threads={threads}");
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_eq!(x.0, y.0, "neighbor id at {i}, threads={threads}");
                    assert_eq!(
                        x.1.to_bits(),
                        y.1.to_bits(),
                        "edge cost bits at {i}, threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_roadmap_query_is_none() {
        let problem = ArmProblem::map_f(6);
        let roadmap = Roadmap {
            nodes: Vec::new(),
            adjacency: Vec::new(),
            offline_collision_checks: 0,
            motion_free_evals: 0,
            edge_count: 0,
        };
        let mut profiler = Profiler::new();
        assert!(Prm::new(PrmConfig::default())
            .query(&problem, &roadmap, &mut profiler, &mut NullTrace)
            .is_none());
    }

    #[test]
    fn traced_query_reads_roadmap_records() {
        let problem = ArmProblem::map_f(1);
        let mut profiler = Profiler::new();
        let prm = Prm::new(PrmConfig {
            roadmap_size: 300,
            ..Default::default()
        });
        let roadmap = prm.build(&problem, &mut profiler);
        let mut rec = RecordingTrace::default();
        let traced = prm
            .query(&problem, &roadmap, &mut profiler, &mut rec)
            .unwrap();
        let plain = prm
            .query(&problem, &roadmap, &mut profiler, &mut NullTrace)
            .unwrap();
        assert_eq!(traced.cost.to_bits(), plain.cost.to_bits());
        assert_eq!(traced.expanded, plain.expanded);
        assert_eq!(traced.l2_evals, plain.l2_evals);
        // Connection scans every vertex for start and goal: at least
        // 2 * |V| reads of 40 B records below the search regions.
        let record_reads = rec
            .ops
            .iter()
            .filter(|op| !op.is_write && op.addr < (1 << 36))
            .count() as u64;
        assert!(record_reads >= 2 * roadmap.len() as u64);
    }

    #[test]
    fn path_cost_at_least_direct_distance() {
        let problem = ArmProblem::map_f(7);
        let mut profiler = Profiler::new();
        let prm = Prm::new(PrmConfig {
            roadmap_size: 500,
            ..Default::default()
        });
        let roadmap = prm.build(&problem, &mut profiler);
        let r = prm
            .query(&problem, &roadmap, &mut profiler, &mut NullTrace)
            .unwrap();
        assert!(r.cost >= config_distance(&problem.start, &problem.goal) - 1e-9);
    }
}

//! Best-first graph search: Dijkstra, A* and Weighted A*.
//!
//! The paper's grid planners (`04.pp2d`, `05.pp3d`, `06.movtar`), the PRM
//! online phase and the symbolic planner all reduce to best-first search.
//! The engine here is shared by all of them; its `*_traced` variants emit
//! every open-list push/pop, bookkeeping probe and node-record read into a
//! [`MemTrace`] sink, reproducing the "irregular traversal ... hard to
//! parallelize" behaviour the paper highlights for graph search. With
//! [`NullTrace`] (the default) the emission compiles to nothing.

use std::cmp::Ordering;
// rtr-lint: allow(nondet-iter) -- maps below are keyed-lookup only, never iterated
use std::collections::{BinaryHeap, HashMap};
use std::hash::Hash;

use rtr_trace::{MemTrace, NullTrace};

/// Synthetic base address of the open-list entry array (32 B entries).
const OPEN_REGION: u64 = 1 << 40;
/// Synthetic base address of the best/closed bookkeeping table.
const BEST_REGION: u64 = 1 << 41;
/// Bytes per open-list entry: f, g and a node id.
const OPEN_ENTRY_BYTES: u64 = 32;
/// Bytes per bookkeeping bucket: best g plus a parent id.
const BEST_BUCKET_BYTES: u64 = 16;

/// Maps a node's record address onto its bookkeeping bucket (a splitmix64
/// finalizer over a fixed 2^20-bucket table), so best/closed probes scatter
/// the way a hash table's do.
#[inline]
fn probe_addr(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    BEST_REGION + (z & ((1 << 20) - 1)) * BEST_BUCKET_BYTES
}

/// Replays a binary-heap push at slot `len`: the appended entry is written,
/// then the parent chain is read on the way up (sift-up).
#[inline]
fn trace_heap_push<T: MemTrace + ?Sized>(trace: &mut T, len: usize) {
    let mut idx = len as u64;
    trace.write(OPEN_REGION + idx * OPEN_ENTRY_BYTES);
    while idx > 0 {
        idx = (idx - 1) / 2;
        trace.read(OPEN_REGION + idx * OPEN_ENTRY_BYTES);
    }
}

/// Replays a binary-heap pop with `len_after` entries remaining: the root is
/// read, the tail entry moves into its slot, and the child chain is read on
/// the way down (sift-down).
#[inline]
fn trace_heap_pop<T: MemTrace + ?Sized>(trace: &mut T, len_after: usize) {
    trace.read(OPEN_REGION);
    let len = len_after as u64;
    if len == 0 {
        return;
    }
    trace.read(OPEN_REGION + len * OPEN_ENTRY_BYTES);
    trace.write(OPEN_REGION);
    let mut k = 0u64;
    while 2 * k + 1 < len {
        trace.read(OPEN_REGION + (2 * k + 1) * OPEN_ENTRY_BYTES);
        if 2 * k + 2 < len {
            trace.read(OPEN_REGION + (2 * k + 2) * OPEN_ENTRY_BYTES);
        }
        k = 2 * k + 1;
    }
}

/// A search problem over an implicitly defined graph.
///
/// Implementations enumerate successors on demand; the engine never
/// materializes the full graph (the paper's 3D and time-expanded graphs
/// would not fit).
pub trait SearchSpace {
    /// Node identifier. Kept `Copy` so the open/closed bookkeeping stays
    /// allocation-free per expansion.
    type Node: Copy + Eq + Hash;

    /// Appends `(successor, edge_cost)` pairs of `node` to `out`.
    ///
    /// `out` arrives cleared. Edge costs must be non-negative.
    fn successors(&self, node: Self::Node, out: &mut Vec<(Self::Node, f64)>);

    /// Admissible estimate of the remaining cost from `node` to a goal.
    ///
    /// Return `0.0` to degrade A* to Dijkstra.
    fn heuristic(&self, node: Self::Node) -> f64;

    /// Returns `true` when `node` satisfies the goal condition.
    fn is_goal(&self, node: Self::Node) -> bool;
}

/// Outcome of a successful search.
#[derive(Debug, Clone)]
pub struct SearchResult<N> {
    /// Start-to-goal node sequence, inclusive.
    pub path: Vec<N>,
    /// Total path cost.
    pub cost: f64,
    /// Nodes expanded (popped with final g-value).
    pub expanded: u64,
    /// Successor edges generated.
    pub generated: u64,
}

/// Open-list entry ordered by ascending f-value (max-heap inverted).
struct OpenEntry<N> {
    f: f64,
    g: f64,
    node: N,
}

impl<N> PartialEq for OpenEntry<N> {
    fn eq(&self, other: &Self) -> bool {
        self.f == other.f
    }
}
impl<N> Eq for OpenEntry<N> {}
impl<N> PartialOrd for OpenEntry<N> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<N> Ord for OpenEntry<N> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; tie-break on larger g (deeper first),
        // which is the standard A* tie-breaking that reduces expansions.
        other
            .f
            .total_cmp(&self.f)
            .then_with(|| self.g.total_cmp(&other.g))
    }
}

/// A* search (`weight = 1`). See [`weighted_astar`].
pub fn astar<S: SearchSpace>(space: &S, start: S::Node) -> Option<SearchResult<S::Node>> {
    weighted_astar(space, start, 1.0)
}

/// A* search emitting its open-list, bookkeeping and node-record accesses
/// into `trace`. See [`weighted_astar_traced`].
pub fn astar_traced<S: SearchSpace, T: MemTrace + ?Sized>(
    space: &S,
    start: S::Node,
    trace: &mut T,
    node_addr: &mut dyn FnMut(&S::Node) -> u64,
) -> Option<SearchResult<S::Node>> {
    weighted_astar_impl(space, start, 1.0, trace, node_addr)
}

/// Dijkstra search (ignores the space's heuristic).
pub fn dijkstra<S: SearchSpace>(space: &S, start: S::Node) -> Option<SearchResult<S::Node>> {
    weighted_astar_impl(space, start, 0.0, &mut NullTrace, &mut |_| 0)
}

/// Weighted A*: node priority is `g + weight·h`.
///
/// `weight = 1` is optimal A*; `weight > 1` inflates the heuristic for
/// speed at the cost of up to `weight`-suboptimal paths — exactly the
/// `06.movtar` trade-off the paper describes ("the final path cost could
/// become ε times higher than the shortest path cost").
///
/// Returns `None` when the goal is unreachable.
///
/// # Panics
///
/// Panics if `weight` is negative or NaN.
///
/// # Example
///
/// ```
/// use rtr_planning::search::{weighted_astar, SearchSpace};
///
/// // A 1D line where the goal is at 5.
/// struct Line;
/// impl SearchSpace for Line {
///     type Node = i64;
///     fn successors(&self, n: i64, out: &mut Vec<(i64, f64)>) {
///         out.push((n + 1, 1.0));
///         out.push((n - 1, 1.0));
///     }
///     fn heuristic(&self, n: i64) -> f64 { (5 - n).abs() as f64 }
///     fn is_goal(&self, n: i64) -> bool { n == 5 }
/// }
/// let result = weighted_astar(&Line, 0, 1.0).unwrap();
/// assert_eq!(result.cost, 5.0);
/// assert_eq!(result.path.len(), 6);
/// ```
pub fn weighted_astar<S: SearchSpace>(
    space: &S,
    start: S::Node,
    weight: f64,
) -> Option<SearchResult<S::Node>> {
    weighted_astar_impl(space, start, weight, &mut NullTrace, &mut |_| 0)
}

/// Like [`weighted_astar`], emitting the search's memory behaviour into a
/// [`MemTrace`] sink: every open-list push/pop (sift chains included),
/// best/closed bookkeeping probe, and a read of each touched node's record
/// at the address `node_addr` assigns it (grid cell, roadmap vertex, …).
///
/// With [`NullTrace`] the emission folds away entirely and the search is
/// the untraced one; results are bit-identical regardless of sink.
pub fn weighted_astar_traced<S: SearchSpace, T: MemTrace + ?Sized>(
    space: &S,
    start: S::Node,
    weight: f64,
    trace: &mut T,
    node_addr: &mut dyn FnMut(&S::Node) -> u64,
) -> Option<SearchResult<S::Node>> {
    weighted_astar_impl(space, start, weight, trace, node_addr)
}

fn weighted_astar_impl<S: SearchSpace, T: MemTrace + ?Sized>(
    space: &S,
    start: S::Node,
    weight: f64,
    trace: &mut T,
    node_addr: &mut dyn FnMut(&S::Node) -> u64,
) -> Option<SearchResult<S::Node>> {
    assert!(weight >= 0.0, "heuristic weight must be non-negative");

    let mut open = BinaryHeap::new();
    // node → (best g, parent). Accessed by key only (get/insert); iteration
    // order never reaches the search result, so hash maps are safe here and
    // keep generic nodes to a Hash + Eq bound.
    // rtr-lint: allow(nondet-iter) -- keyed get/insert only, order never observed
    let mut best: HashMap<S::Node, (f64, Option<S::Node>)> = HashMap::new();
    // rtr-lint: allow(nondet-iter) -- membership test only, order never observed
    let mut closed: HashMap<S::Node, ()> = HashMap::new();
    let mut succ_buf: Vec<(S::Node, f64)> = Vec::new();
    let mut expanded = 0u64;
    let mut generated = 0u64;

    best.insert(start, (0.0, None));
    if trace.enabled() {
        trace.write(probe_addr(node_addr(&start)));
        trace_heap_push(trace, 0);
    }
    open.push(OpenEntry {
        f: weight * space.heuristic(start),
        g: 0.0,
        node: start,
    });

    while let Some(OpenEntry { g, node, .. }) = open.pop() {
        if trace.enabled() {
            trace_heap_pop(trace, open.len());
            trace.read(probe_addr(node_addr(&node)));
        }
        // Skip stale entries (lazy decrease-key).
        match best.get(&node) {
            Some(&(best_g, _)) if g > best_g => continue,
            _ => {}
        }
        if closed.contains_key(&node) {
            continue;
        }
        closed.insert(node, ());
        expanded += 1;
        if trace.enabled() {
            let addr = node_addr(&node);
            trace.write(probe_addr(addr)); // mark closed
            trace.read(addr); // the node's own record (grid cell, vertex, …)
        }

        if space.is_goal(node) {
            // Reconstruct the path.
            let mut path = vec![node];
            let mut cur = node;
            while let Some(&(_, Some(parent))) = best.get(&cur) {
                path.push(parent);
                cur = parent;
            }
            path.reverse();
            return Some(SearchResult {
                path,
                cost: g,
                expanded,
                generated,
            });
        }

        succ_buf.clear();
        space.successors(node, &mut succ_buf);
        for &(next, edge_cost) in &succ_buf {
            debug_assert!(edge_cost >= 0.0, "negative edge cost");
            generated += 1;
            if trace.enabled() {
                trace.read(probe_addr(node_addr(&next))); // closed/best probe
            }
            if closed.contains_key(&next) {
                continue;
            }
            let tentative = g + edge_cost;
            let improved = match best.get(&next) {
                Some(&(existing, _)) => tentative < existing,
                None => true,
            };
            if improved {
                best.insert(next, (tentative, Some(node)));
                if trace.enabled() {
                    trace.write(probe_addr(node_addr(&next)));
                    trace_heap_push(trace, open.len());
                }
                open.push(OpenEntry {
                    f: tentative + weight * space.heuristic(next),
                    g: tentative,
                    node: next,
                });
            }
        }
    }
    None
}

/// One solution from an anytime search, with its suboptimality bound.
#[derive(Debug, Clone)]
pub struct AnytimeSolution<N> {
    /// The weight the solution was found with (its suboptimality bound).
    pub weight: f64,
    /// The search result at that weight.
    pub result: SearchResult<N>,
}

/// Anytime weighted A* in the spirit of ARA* (the paper's SBPL lineage):
/// runs Weighted A* with a decreasing weight schedule, keeping every
/// improving solution. The first entry arrives fast with a loose bound;
/// the last entry found within the schedule is the tightest.
///
/// Returns the improving solutions in discovery order (empty when even
/// the loosest weight finds no path). This simple formulation re-searches
/// per weight rather than repairing, trading efficiency for clarity; the
/// bound semantics match ARA*'s.
///
/// # Panics
///
/// Panics if `initial_weight < 1`, `step <= 0`, or `final_weight < 1`.
///
/// # Example
///
/// ```
/// use rtr_planning::search::{anytime_weighted_astar, SearchSpace};
///
/// struct Line;
/// impl SearchSpace for Line {
///     type Node = i64;
///     fn successors(&self, n: i64, out: &mut Vec<(i64, f64)>) {
///         out.push((n + 1, 1.0));
///         out.push((n - 1, 1.0));
///     }
///     fn heuristic(&self, n: i64) -> f64 { (9 - n).abs() as f64 }
///     fn is_goal(&self, n: i64) -> bool { n == 9 }
/// }
/// let solutions = anytime_weighted_astar(&Line, 0, 3.0, 1.0, 1.0);
/// assert_eq!(solutions.last().unwrap().weight, 1.0);
/// assert_eq!(solutions.last().unwrap().result.cost, 9.0);
/// ```
pub fn anytime_weighted_astar<S: SearchSpace>(
    space: &S,
    start: S::Node,
    initial_weight: f64,
    step: f64,
    final_weight: f64,
) -> Vec<AnytimeSolution<S::Node>> {
    assert!(initial_weight >= 1.0, "initial weight must be >= 1");
    assert!(final_weight >= 1.0, "final weight must be >= 1");
    assert!(step > 0.0, "weight step must be positive");

    let mut solutions: Vec<AnytimeSolution<S::Node>> = Vec::new();
    let mut weight = initial_weight.max(final_weight);
    loop {
        if let Some(result) = weighted_astar(space, start, weight) {
            match solutions.last_mut() {
                Some(prev) if result.cost >= prev.result.cost - 1e-12 => {
                    // No cheaper path, but completing the tighter search
                    // still tightens the bound on the best-so-far (the
                    // ARA* bound-update rule).
                    prev.weight = prev.weight.min(weight);
                }
                _ => solutions.push(AnytimeSolution { weight, result }),
            }
        } else if solutions.is_empty() {
            return solutions; // Unreachable at the loosest bound: give up.
        }
        if weight <= final_weight {
            return solutions;
        }
        weight = (weight - step).max(final_weight);
    }
}

/// Multi-source Dijkstra over an explicit successor function, returning the
/// cost-to-come for every reached node.
///
/// This is the *backward Dijkstra* heuristic precomputation of `06.movtar`:
/// seeded from the goal set, it labels the whole reachable space with exact
/// goal distances in one sweep.
// rtr-lint: allow(nondet-iter) -- callers read the table by key, never by order
pub fn dijkstra_flood<N, F>(sources: &[N], successors: F) -> HashMap<N, f64>
where
    N: Copy + Eq + Hash,
    F: FnMut(N, &mut Vec<(N, f64)>),
{
    dijkstra_flood_traced(sources, successors, &mut NullTrace, &mut |_| 0)
}

/// Like [`dijkstra_flood`], emitting the sweep's open-list operations and
/// distance-table probes into a [`MemTrace`] sink (see
/// [`weighted_astar_traced`] for the emission model).
// rtr-lint: allow(nondet-iter) -- callers read the table by key, never by order
pub fn dijkstra_flood_traced<N, F, T>(
    sources: &[N],
    mut successors: F,
    trace: &mut T,
    node_addr: &mut dyn FnMut(&N) -> u64,
    // rtr-lint: allow(nondet-iter) -- callers read the table by key, never by order
) -> HashMap<N, f64>
where
    N: Copy + Eq + Hash,
    F: FnMut(N, &mut Vec<(N, f64)>),
    T: MemTrace + ?Sized,
{
    // rtr-lint: allow(nondet-iter) -- keyed get/insert only, order never observed
    let mut dist: HashMap<N, f64> = HashMap::new();
    let mut open = BinaryHeap::new();
    for &s in sources {
        dist.insert(s, 0.0);
        if trace.enabled() {
            trace.write(probe_addr(node_addr(&s)));
            trace_heap_push(trace, open.len());
        }
        open.push(OpenEntry {
            f: 0.0,
            g: 0.0,
            node: s,
        });
    }
    let mut buf = Vec::new();
    while let Some(OpenEntry { g, node, .. }) = open.pop() {
        if trace.enabled() {
            trace_heap_pop(trace, open.len());
            trace.read(probe_addr(node_addr(&node)));
        }
        if let Some(&d) = dist.get(&node) {
            if g > d {
                continue;
            }
        }
        buf.clear();
        successors(node, &mut buf);
        for &(next, cost) in &buf {
            let tentative = g + cost;
            let improved = dist.get(&next).is_none_or(|&d| tentative < d);
            if trace.enabled() {
                trace.read(probe_addr(node_addr(&next)));
            }
            if improved {
                dist.insert(next, tentative);
                if trace.enabled() {
                    trace.write(probe_addr(node_addr(&next)));
                    trace_heap_push(trace, open.len());
                }
                open.push(OpenEntry {
                    f: tentative,
                    g: tentative,
                    node: next,
                });
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small weighted digraph fixed in an adjacency list.
    struct Fixture {
        adj: Vec<Vec<(usize, f64)>>,
        goal: usize,
        h: Vec<f64>,
    }

    impl SearchSpace for Fixture {
        type Node = usize;
        fn successors(&self, n: usize, out: &mut Vec<(usize, f64)>) {
            out.extend_from_slice(&self.adj[n]);
        }
        fn heuristic(&self, n: usize) -> f64 {
            self.h[n]
        }
        fn is_goal(&self, n: usize) -> bool {
            n == self.goal
        }
    }

    fn diamond() -> Fixture {
        // 0 → 1 (1), 0 → 2 (4), 1 → 3 (5), 2 → 3 (1): best 0-2-3 = 5.
        Fixture {
            adj: vec![
                vec![(1, 1.0), (2, 4.0)],
                vec![(3, 5.0)],
                vec![(3, 1.0)],
                vec![],
            ],
            goal: 3,
            h: vec![0.0; 4],
        }
    }

    #[test]
    fn dijkstra_finds_cheapest_path() {
        let result = dijkstra(&diamond(), 0).unwrap();
        assert_eq!(result.cost, 5.0);
        assert_eq!(result.path, vec![0, 2, 3]);
    }

    #[test]
    fn astar_with_admissible_heuristic_matches_dijkstra() {
        let mut fx = diamond();
        fx.h = vec![4.0, 5.0, 1.0, 0.0]; // admissible
        let a = astar(&fx, 0).unwrap();
        let d = dijkstra(&fx, 0).unwrap();
        assert_eq!(a.cost, d.cost);
        assert!(a.expanded <= d.expanded);
    }

    #[test]
    fn weighted_astar_bounded_suboptimality() {
        // Build a grid-ish chain with a tempting greedy detour.
        struct Grid;
        impl SearchSpace for Grid {
            type Node = (i64, i64);
            fn successors(&self, (x, y): (i64, i64), out: &mut Vec<((i64, i64), f64)>) {
                for (dx, dy) in [(1, 0), (-1, 0), (0, 1), (0, -1)] {
                    let n = (x + dx, y + dy);
                    if (0..=20).contains(&n.0) && (0..=20).contains(&n.1) {
                        out.push((n, 1.0));
                    }
                }
            }
            fn heuristic(&self, (x, y): (i64, i64)) -> f64 {
                ((20 - x).abs() + (10 - y).abs()) as f64
            }
            fn is_goal(&self, n: (i64, i64)) -> bool {
                n == (20, 10)
            }
        }
        let optimal = astar(&Grid, (0, 0)).unwrap();
        let eps = 3.0;
        let fast = weighted_astar(&Grid, (0, 0), eps).unwrap();
        assert!(fast.cost <= eps * optimal.cost + 1e-9);
        assert!(fast.expanded <= optimal.expanded);
    }

    #[test]
    fn unreachable_goal_returns_none() {
        let fx = Fixture {
            adj: vec![vec![], vec![]],
            goal: 1,
            h: vec![0.0, 0.0],
        };
        assert!(astar(&fx, 0).is_none());
    }

    #[test]
    fn start_is_goal() {
        let fx = Fixture {
            adj: vec![vec![]],
            goal: 0,
            h: vec![0.0],
        };
        let r = astar(&fx, 0).unwrap();
        assert_eq!(r.cost, 0.0);
        assert_eq!(r.path, vec![0]);
        assert_eq!(r.expanded, 1);
    }

    #[test]
    fn traced_search_emits_node_reads_and_open_list_ops() {
        use rtr_trace::RecordingTrace;

        let mut rec = RecordingTrace::default();
        let traced =
            weighted_astar_traced(&diamond(), 0, 1.0, &mut rec, &mut |n| *n as u64 * 64).unwrap();
        // The first node-record read (sub-OPEN_REGION address) is the start.
        let first_record = rec
            .ops
            .iter()
            .find(|op| !op.is_write && op.addr < OPEN_REGION)
            .expect("expansions must read node records");
        assert_eq!(first_record.addr, 0);
        // The goal's record is read too, and the heap sees pushes (writes in
        // the OPEN region) and bookkeeping writes (BEST region).
        assert!(rec.ops.iter().any(|op| !op.is_write && op.addr == 3 * 64));
        assert!(rec
            .ops
            .iter()
            .any(|op| op.is_write && (OPEN_REGION..BEST_REGION).contains(&op.addr)));
        assert!(rec
            .ops
            .iter()
            .any(|op| op.is_write && op.addr >= BEST_REGION));
        // Tracing is an observability knob: identical result either way.
        let plain = weighted_astar(&diamond(), 0, 1.0).unwrap();
        assert_eq!(traced.path, plain.path);
        assert_eq!(traced.cost.to_bits(), plain.cost.to_bits());
        assert_eq!(traced.expanded, plain.expanded);
    }

    #[test]
    fn traced_flood_matches_untraced() {
        use rtr_trace::CountingTrace;

        let succ = |n: i64, out: &mut Vec<(i64, f64)>| {
            for next in [n - 1, n + 1] {
                if (0..=4).contains(&next) {
                    out.push((next, 1.0));
                }
            }
        };
        let plain = dijkstra_flood(&[0i64, 4], succ);
        let mut counts = CountingTrace::default();
        let traced = dijkstra_flood_traced(&[0i64, 4], succ, &mut counts, &mut |n| *n as u64 * 8);
        assert_eq!(plain, traced);
        assert!(counts.reads > 0 && counts.writes > 0);
    }

    #[test]
    fn counts_are_plausible() {
        let r = dijkstra(&diamond(), 0).unwrap();
        assert!(r.expanded >= 3);
        assert!(r.generated >= r.expanded - 1);
    }

    #[test]
    fn dijkstra_flood_multi_source() {
        // Line graph 0-1-2-3-4 with unit edges, sources {0, 4}.
        let dist = dijkstra_flood(&[0i64, 4], |n, out| {
            for next in [n - 1, n + 1] {
                if (0..=4).contains(&next) {
                    out.push((next, 1.0));
                }
            }
        });
        assert_eq!(dist[&0], 0.0);
        assert_eq!(dist[&2], 2.0);
        assert_eq!(dist[&3], 1.0);
        assert_eq!(dist.len(), 5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        let _ = weighted_astar(&diamond(), 0, -1.0);
    }

    #[test]
    fn anytime_converges_to_optimal() {
        // Grid where greedy WA* takes a worse corridor first.
        struct Trap;
        impl SearchSpace for Trap {
            type Node = (i64, i64);
            fn successors(&self, (x, y): (i64, i64), out: &mut Vec<((i64, i64), f64)>) {
                for (dx, dy) in [(1, 0), (-1, 0), (0, 1), (0, -1)] {
                    let n = (x + dx, y + dy);
                    // A wall at x=5 except a gap far from the goal line.
                    let blocked = n.0 == 5 && n.1 != 8;
                    if (0..=10).contains(&n.0) && (0..=10).contains(&n.1) && !blocked {
                        out.push((n, 1.0));
                    }
                }
            }
            fn heuristic(&self, (x, y): (i64, i64)) -> f64 {
                ((10 - x).abs() + y.abs()) as f64
            }
            fn is_goal(&self, n: (i64, i64)) -> bool {
                n == (10, 0)
            }
        }
        let solutions = anytime_weighted_astar(&Trap, (0, 0), 5.0, 2.0, 1.0);
        assert!(!solutions.is_empty());
        // Costs strictly improve, final equals optimal A*.
        for w in solutions.windows(2) {
            assert!(w[1].result.cost < w[0].result.cost);
        }
        let optimal = astar(&Trap, (0, 0)).unwrap();
        let last = solutions.last().unwrap();
        assert_eq!(last.weight, 1.0);
        assert_eq!(last.result.cost, optimal.cost);
        // Every intermediate respects its bound.
        for s in &solutions {
            assert!(s.result.cost <= s.weight * optimal.cost + 1e-9);
        }
    }

    #[test]
    fn anytime_unreachable_is_empty() {
        let fx = Fixture {
            adj: vec![vec![], vec![]],
            goal: 1,
            h: vec![0.0, 0.0],
        };
        assert!(anytime_weighted_astar(&fx, 0, 3.0, 1.0, 1.0).is_empty());
    }
}

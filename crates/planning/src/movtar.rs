//! `06.movtar` — catching a moving target.
//!
//! The robot knows the target's full trajectory and must intercept it at
//! minimum cost in a 2D environment where "every location ... has a
//! particular cost for the robot". Planning happens in 3D — x, y and time.
//! Following the paper, the search is Weighted A* (WA*) with a heuristic
//! computed up front by *backward Dijkstra* from the target trajectory,
//! "executed to calculate the heuristic values in an environment-aware
//! manner (e.g., accounting for obstacles)". The paper finds the kernel
//! input-dependent: in small environments the heuristic calculation grows
//! to 62 % of the end-to-end latency, which the `heuristic_calc` region
//! exposes.

// rtr-lint: allow(nondet-iter) -- heuristic table is read by key, never iterated
use std::collections::HashMap;

use rtr_harness::Profiler;
use rtr_sim::SimRng;
use rtr_trace::MemTrace;

use crate::search::{dijkstra_flood_traced, weighted_astar_traced, SearchSpace};

/// A 2D cost field: obstacles are `f64::INFINITY`, free cells have a
/// positive traversal cost.
#[derive(Debug, Clone)]
pub struct CostField {
    width: usize,
    height: usize,
    cost: Vec<f64>,
}

impl CostField {
    /// Creates a field with uniform unit cost.
    pub fn uniform(width: usize, height: usize) -> Self {
        CostField {
            width,
            height,
            cost: vec![1.0; width * height],
        }
    }

    /// Width in cells.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in cells.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Cost of entering `(x, y)`; infinite outside the field.
    #[inline]
    pub fn cost(&self, x: i64, y: i64) -> f64 {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            return f64::INFINITY;
        }
        self.cost[y as usize * self.width + x as usize]
    }

    /// Sets the cost of a cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of bounds or the cost is negative.
    pub fn set_cost(&mut self, x: usize, y: usize, cost: f64) {
        assert!(x < self.width && y < self.height, "cell out of bounds");
        assert!(cost >= 0.0, "costs must be non-negative");
        self.cost[y * self.width + x] = cost;
    }

    /// Returns `true` when the cell is traversable.
    #[inline]
    pub fn is_free(&self, x: i64, y: i64) -> bool {
        self.cost(x, y).is_finite()
    }
}

/// Configuration for [`MovingTarget`].
#[derive(Debug, Clone)]
pub struct MovtarConfig {
    /// Robot start cell.
    pub start: (usize, usize),
    /// Target position at every time step (the robot "knows the trajectory
    /// of the target").
    pub target_trajectory: Vec<(usize, usize)>,
    /// WA* heuristic inflation ε (≥ 1).
    pub epsilon: f64,
}

/// Result of an interception run.
#[derive(Debug, Clone)]
pub struct MovtarResult {
    /// Robot path as `(x, y, t)` from start to the catch point.
    pub path: Vec<(usize, usize, usize)>,
    /// Accumulated location cost of the path.
    pub cost: f64,
    /// Time step at which the target is caught.
    pub catch_time: usize,
    /// Nodes expanded by the WA* search.
    pub expanded: u64,
    /// Cells labeled by the backward-Dijkstra heuristic.
    pub heuristic_cells: usize,
}

const MOVES: [(i64, i64); 9] = [
    (0, 0), // waiting is allowed — the robot may let the target come to it
    (1, 0),
    (-1, 0),
    (0, 1),
    (0, -1),
    (1, 1),
    (1, -1),
    (-1, 1),
    (-1, -1),
];

struct TimeSpace<'a> {
    field: &'a CostField,
    trajectory: &'a [(usize, usize)],
    // rtr-lint: allow(nondet-iter) -- get()-only lookups, order never observed
    heuristic: &'a HashMap<(i64, i64), f64>,
    epsilon_floor: f64,
}

impl SearchSpace for TimeSpace<'_> {
    /// `(x, y, t)`.
    type Node = (i64, i64, usize);

    fn successors(&self, (x, y, t): Self::Node, out: &mut Vec<(Self::Node, f64)>) {
        if t + 1 >= self.trajectory.len() {
            return; // Horizon exhausted: the target escaped.
        }
        for (dx, dy) in MOVES {
            let nx = x + dx;
            let ny = y + dy;
            let cell_cost = self.field.cost(nx, ny);
            if cell_cost.is_finite() {
                // Entering a cell costs its location cost; waiting costs
                // the current cell's (the robot keeps "paying rent").
                out.push(((nx, ny, t + 1), cell_cost.max(self.epsilon_floor)));
            }
        }
    }

    fn heuristic(&self, (x, y, _): Self::Node) -> f64 {
        // Backward-Dijkstra cost-to-trajectory, time-agnostic.
        self.heuristic
            .get(&(x, y))
            .copied()
            .unwrap_or(f64::INFINITY)
    }

    fn is_goal(&self, (x, y, t): Self::Node) -> bool {
        self.trajectory
            .get(t)
            .is_some_and(|&(tx, ty)| tx as i64 == x && ty as i64 == y)
    }
}

/// The moving-target interception kernel.
///
/// # Example
///
/// ```
/// use rtr_planning::movtar::{CostField, MovingTarget, MovtarConfig};
/// use rtr_harness::Profiler;
///
/// let field = CostField::uniform(16, 16);
/// let trajectory: Vec<(usize, usize)> = (0..16).map(|t| (15 - t.min(15), 8)).collect();
/// let config = MovtarConfig { start: (0, 8), target_trajectory: trajectory, epsilon: 1.0 };
/// let mut profiler = Profiler::new();
/// let result = MovingTarget::new(config)
///     .plan(&field, &mut profiler, &mut rtr_trace::NullTrace)
///     .unwrap();
/// assert!(result.catch_time <= 8);
/// ```
#[derive(Debug, Clone)]
pub struct MovingTarget {
    config: MovtarConfig,
}

impl MovingTarget {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon < 1` or the trajectory is empty.
    pub fn new(config: MovtarConfig) -> Self {
        assert!(config.epsilon >= 1.0, "epsilon must be >= 1");
        assert!(
            !config.target_trajectory.is_empty(),
            "target trajectory must be non-empty"
        );
        MovingTarget { config }
    }

    /// Plans an interception path; `None` when the target cannot be caught
    /// within its trajectory horizon.
    ///
    /// Profiler regions: `heuristic_calc` (backward Dijkstra) and
    /// `graph_search` (the WA* phase). Both phases emit into `trace`: the
    /// flood reads/writes 8 B cost-field cells (row-major from address 0)
    /// and the WA* walks 16 B time-expanded node records above `1 << 32`;
    /// pass [`rtr_trace::NullTrace`] for an untraced run.
    pub fn plan<T: MemTrace + ?Sized>(
        &self,
        field: &CostField,
        profiler: &mut Profiler,
        trace: &mut T,
    ) -> Option<MovtarResult> {
        // Backward Dijkstra from every cell the target visits: costs are
        // symmetric here (cost of entering), so the backward graph uses the
        // same successor costs.
        let sources: Vec<(i64, i64)> = self
            .config
            .target_trajectory
            .iter()
            .filter(|&&(x, y)| field.is_free(x as i64, y as i64))
            .map(|&(x, y)| (x as i64, y as i64))
            .collect();
        if sources.is_empty() {
            return None;
        }
        let w = field.width() as u64;
        let h = field.height() as u64;
        let heuristic = profiler.time("heuristic_calc", || {
            dijkstra_flood_traced(
                &sources,
                |(x, y), out| {
                    for (dx, dy) in &MOVES[1..] {
                        let nx = x + dx;
                        let ny = y + dy;
                        let c = field.cost(nx, ny);
                        if c.is_finite() {
                            out.push(((nx, ny), c));
                        }
                    }
                },
                trace,
                &mut |&(x, y)| (y.max(0) as u64 * w + x.max(0) as u64) * 8,
            )
        });
        let heuristic_cells = heuristic.len();

        let space = TimeSpace {
            field,
            trajectory: &self.config.target_trajectory,
            heuristic: &heuristic,
            epsilon_floor: 1e-6,
        };
        let start = (
            self.config.start.0 as i64,
            self.config.start.1 as i64,
            0usize,
        );
        if !field.is_free(start.0, start.1) {
            return None;
        }
        let result = profiler.time("graph_search", || {
            weighted_astar_traced(
                &space,
                start,
                self.config.epsilon,
                trace,
                &mut |&(x, y, t)| {
                    let cell = (t as u64 * h + y.max(0) as u64) * w + x.max(0) as u64;
                    (1 << 32) + cell * 16
                },
            )
        })?;

        let path: Vec<(usize, usize, usize)> = result
            .path
            .iter()
            .map(|&(x, y, t)| (x as usize, y as usize, t))
            .collect();
        Some(MovtarResult {
            catch_time: path.last().map(|&(_, _, t)| t).unwrap_or(0),
            path,
            cost: result.cost,
            expanded: result.expanded,
            heuristic_cells,
        })
    }
}

/// Generates a synthetic environment in the spirit of the paper ("we
/// create our own synthetic environments"): a smooth cost landscape with
/// scattered obstacles, plus a target walking a straight-ish escape route.
///
/// Returns `(field, robot_start, target_trajectory)`.
pub fn synthetic_scenario(
    size: usize,
    horizon: usize,
    seed: u64,
) -> (CostField, (usize, usize), Vec<(usize, usize)>) {
    assert!(size >= 8, "scenario needs at least an 8x8 field");
    let mut rng = SimRng::seed_from(seed);
    let mut field = CostField::uniform(size, size);

    // Smooth cost hills: a few Gaussian bumps.
    let bumps: Vec<(f64, f64, f64)> = (0..size / 8 + 2)
        .map(|_| {
            (
                rng.uniform(0.0, size as f64),
                rng.uniform(0.0, size as f64),
                rng.uniform(2.0, 8.0),
            )
        })
        .collect();
    for y in 0..size {
        for x in 0..size {
            let mut c = 1.0;
            for &(bx, by, amp) in &bumps {
                let d2 = (x as f64 - bx).powi(2) + (y as f64 - by).powi(2);
                c += amp * (-d2 / (size as f64)).exp();
            }
            field.set_cost(x, y, c);
        }
    }

    // Obststacle blocks away from the border.
    for _ in 0..size / 4 {
        let w = 1 + rng.below(size / 8);
        let h = 1 + rng.below(size / 8);
        let x0 = 1 + rng.below(size - w - 2);
        let y0 = 1 + rng.below(size - h - 2);
        for y in y0..y0 + h {
            for x in x0..x0 + w {
                field.set_cost(x, y, f64::INFINITY);
            }
        }
    }

    // Robot starts near one corner; the target walks from the opposite
    // corner along the border (always free: clear the border ring).
    for i in 0..size {
        field.set_cost(i, 0, 1.0);
        field.set_cost(i, size - 1, 1.0);
        field.set_cost(0, i, 1.0);
        field.set_cost(size - 1, i, 1.0);
    }
    let start = (1usize, 1usize);
    field.set_cost(start.0, start.1, 1.0);
    let mut trajectory = Vec::with_capacity(horizon);
    let mut pos = (size - 2, size - 2);
    field.set_cost(pos.0, pos.1, 1.0);
    for t in 0..horizon {
        trajectory.push(pos);
        // The target flees along the top border every other step (slower
        // than the robot, as in pursuit problems).
        if t % 2 == 0 && pos.0 > 1 {
            pos.0 -= 1;
            field.set_cost(pos.0, pos.1, 1.0);
        }
    }
    (field, start, trajectory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_trace::{CountingTrace, NullTrace};

    #[test]
    fn catches_approaching_target() {
        let field = CostField::uniform(24, 24);
        // Target walks straight toward the robot.
        let trajectory: Vec<(usize, usize)> = (0..24).map(|t| (23 - t.min(22), 12)).collect();
        let config = MovtarConfig {
            start: (0, 12),
            target_trajectory: trajectory.clone(),
            epsilon: 1.0,
        };
        let mut profiler = Profiler::new();
        let r = MovingTarget::new(config)
            .plan(&field, &mut profiler, &mut NullTrace)
            .unwrap();
        let (x, y, t) = *r.path.last().unwrap();
        assert_eq!(trajectory[t], (x, y), "catch point must match target");
        // Head-on closing: both cover ~half the 23-cell gap, target at half
        // speed → catch around t = 2/3 · 23 ≈ 15.
        assert!(r.catch_time <= 17, "catch took {} steps", r.catch_time);
    }

    #[test]
    fn stationary_target_reduces_to_path_planning() {
        let field = CostField::uniform(16, 16);
        let trajectory = vec![(12, 12); 30];
        let config = MovtarConfig {
            start: (2, 2),
            target_trajectory: trajectory,
            epsilon: 1.0,
        };
        let mut profiler = Profiler::new();
        let r = MovingTarget::new(config)
            .plan(&field, &mut profiler, &mut NullTrace)
            .unwrap();
        // Diagonal distance is 10 moves.
        assert_eq!(r.catch_time, 10);
    }

    #[test]
    fn uncatchable_target_returns_none() {
        let field = CostField::uniform(16, 16);
        // Target too far for the 3-step horizon.
        let config = MovtarConfig {
            start: (0, 0),
            target_trajectory: vec![(15, 15), (15, 14), (15, 13)],
            epsilon: 1.0,
        };
        let mut profiler = Profiler::new();
        assert!(MovingTarget::new(config)
            .plan(&field, &mut profiler, &mut NullTrace)
            .is_none());
    }

    #[test]
    fn prefers_cheap_terrain() {
        let mut field = CostField::uniform(16, 5);
        // Expensive band on the straight line; cheap detour above.
        for x in 2..14 {
            field.set_cost(x, 2, 50.0);
        }
        let trajectory = vec![(15, 2); 40];
        let config = MovtarConfig {
            start: (0, 2),
            target_trajectory: trajectory,
            epsilon: 1.0,
        };
        let mut profiler = Profiler::new();
        let r = MovingTarget::new(config)
            .plan(&field, &mut profiler, &mut NullTrace)
            .unwrap();
        // The path should dodge the expensive band (visit y != 2).
        assert!(r.path.iter().any(|&(_, y, _)| y != 2));
    }

    #[test]
    fn epsilon_trades_cost_for_expansions() {
        let (field, start, trajectory) = synthetic_scenario(48, 96, 3);
        let run = |eps: f64| {
            let mut profiler = Profiler::new();
            MovingTarget::new(MovtarConfig {
                start,
                target_trajectory: trajectory.clone(),
                epsilon: eps,
            })
            .plan(&field, &mut profiler, &mut NullTrace)
            .expect("catchable")
        };
        let optimal = run(1.0);
        let fast = run(3.0);
        assert!(fast.expanded <= optimal.expanded);
        assert!(fast.cost <= 3.0 * optimal.cost + 1e-6);
    }

    #[test]
    fn heuristic_fraction_grows_in_small_envs() {
        // The paper: "in small environments ... the contribution of the
        // heuristic calculation latency to the end-to-end latency grows".
        let frac = |size: usize| {
            let (field, start, trajectory) = synthetic_scenario(size, size * 2, 7);
            let mut profiler = Profiler::new();
            MovingTarget::new(MovtarConfig {
                start,
                target_trajectory: trajectory,
                epsilon: 2.0,
            })
            .plan(&field, &mut profiler, &mut NullTrace)
            .expect("catchable");
            let h = profiler.region_total("heuristic_calc").as_secs_f64();
            let s = profiler.region_total("graph_search").as_secs_f64();
            h / (h + s)
        };
        let small = frac(24);
        let large = frac(96);
        assert!(
            small > large,
            "heuristic share should shrink with size: small {small}, large {large}"
        );
    }

    #[test]
    fn synthetic_scenario_is_well_formed() {
        let (field, start, trajectory) = synthetic_scenario(32, 64, 1);
        assert!(field.is_free(start.0 as i64, start.1 as i64));
        assert_eq!(trajectory.len(), 64);
        for &(x, y) in &trajectory {
            assert!(field.is_free(x as i64, y as i64));
        }
    }

    #[test]
    fn traced_plan_is_bit_identical_and_emits_both_phases() {
        let (field, start, trajectory) = synthetic_scenario(32, 64, 1);
        let config = MovtarConfig {
            start,
            target_trajectory: trajectory,
            epsilon: 2.0,
        };
        let mut profiler = Profiler::new();
        let mut counts = CountingTrace::default();
        let traced = MovingTarget::new(config.clone())
            .plan(&field, &mut profiler, &mut counts)
            .unwrap();
        let plain = MovingTarget::new(config)
            .plan(&field, &mut profiler, &mut NullTrace)
            .unwrap();
        assert_eq!(traced.path, plain.path);
        assert_eq!(traced.cost.to_bits(), plain.cost.to_bits());
        // Flood writes every labeled cell at least once; WA* adds more.
        assert!(counts.writes >= traced.heuristic_cells as u64);
        assert!(counts.reads > 0);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn epsilon_below_one_panics() {
        let _ = MovingTarget::new(MovtarConfig {
            start: (0, 0),
            target_trajectory: vec![(1, 1)],
            epsilon: 0.5,
        });
    }
}

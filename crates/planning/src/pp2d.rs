//! `04.pp2d` — 2D path planning for a car-sized robot.
//!
//! Models "a self-driving car navigating in a city": A* over an
//! 8-connected occupancy grid with a Euclidean heuristic, where every
//! candidate move collision-checks the car's 4.8 m × 1.8 m footprint
//! oriented along the motion direction. The paper measures collision
//! detection at more than 65 % of execution time; the check is the
//! [`rtr_geom::Footprint`] lattice probe, instrumented so its time and its
//! grid accesses are attributable.

use std::cell::Cell;

use rtr_geom::{Footprint, GridMap2D, Pose2};
use rtr_harness::{HotRegion, Profiler};
use rtr_trace::MemTrace;

use crate::search::{weighted_astar_traced, SearchResult, SearchSpace};

/// Configuration for [`Pp2d`].
#[derive(Debug, Clone)]
pub struct Pp2dConfig {
    /// Start cell.
    pub start: (usize, usize),
    /// Goal cell.
    pub goal: (usize, usize),
    /// Robot footprint (the paper's car is 4.8 m × 1.8 m).
    pub footprint: Footprint,
    /// Heuristic inflation (1.0 = optimal A*).
    pub weight: f64,
}

impl Pp2dConfig {
    /// The paper's car scenario between two cells.
    pub fn car(start: (usize, usize), goal: (usize, usize)) -> Self {
        Pp2dConfig {
            start,
            goal,
            footprint: Footprint::new(4.8, 1.8),
            weight: 1.0,
        }
    }
}

/// Result of a 2D planning run.
#[derive(Debug, Clone)]
pub struct Pp2dResult {
    /// Cell path from start to goal.
    pub path: Vec<(usize, usize)>,
    /// Path cost in meters.
    pub cost: f64,
    /// Nodes expanded by the search.
    pub expanded: u64,
    /// Collision checks performed.
    pub collision_checks: u64,
    /// Grid-cell probes performed by collision checks.
    pub cells_probed: u64,
}

/// Search-space adapter: 8-connected grid moves gated by footprint checks.
struct CarSpace<'a> {
    map: &'a GridMap2D,
    goal: (i64, i64),
    footprint: Footprint,
    collision: HotRegion,
    collision_checks: Cell<u64>,
    cells_probed: Cell<u64>,
}

impl CarSpace<'_> {
    /// Footprint check for occupying `cell` while heading `theta`.
    fn pose_free(&self, cell: (i64, i64), theta: f64) -> bool {
        let start = self.collision.start();
        let res = self.map.resolution();
        let pose = Pose2::new(
            (cell.0 as f64 + 0.5) * res,
            (cell.1 as f64 + 0.5) * res,
            theta,
        );
        let mut probes = 0u64;
        let collides = self
            .footprint
            .collides_with(self.map, &pose, |_, _| probes += 1);
        self.collision.add(start);
        self.collision_checks.set(self.collision_checks.get() + 1);
        self.cells_probed.set(self.cells_probed.get() + probes);
        !collides
    }
}

/// The eight grid moves with their metric costs (unit resolution).
const MOVES: [(i64, i64); 8] = [
    (1, 0),
    (-1, 0),
    (0, 1),
    (0, -1),
    (1, 1),
    (1, -1),
    (-1, 1),
    (-1, -1),
];

impl SearchSpace for CarSpace<'_> {
    type Node = (i64, i64);

    fn successors(&self, node: (i64, i64), out: &mut Vec<((i64, i64), f64)>) {
        let res = self.map.resolution();
        for (dx, dy) in MOVES {
            let next = (node.0 + dx, node.1 + dy);
            if !self.map.in_bounds(next.0, next.1) {
                continue;
            }
            let theta = (dy as f64).atan2(dx as f64);
            if self.pose_free(next, theta) {
                let step = ((dx * dx + dy * dy) as f64).sqrt() * res;
                out.push((next, step));
            }
        }
    }

    fn heuristic(&self, node: (i64, i64)) -> f64 {
        let dx = (self.goal.0 - node.0) as f64;
        let dy = (self.goal.1 - node.1) as f64;
        (dx * dx + dy * dy).sqrt() * self.map.resolution()
    }

    fn is_goal(&self, node: (i64, i64)) -> bool {
        node == self.goal
    }
}

/// The 2D path-planning kernel.
///
/// # Example
///
/// ```
/// use rtr_planning::{Pp2d, Pp2dConfig};
/// use rtr_geom::{Footprint, GridMap2D};
/// use rtr_harness::Profiler;
///
/// let map = GridMap2D::new(64, 64, 1.0);
/// let config = Pp2dConfig {
///     start: (5, 5),
///     goal: (50, 50),
///     footprint: Footprint::new(2.0, 1.0),
///     weight: 1.0,
/// };
/// let mut profiler = Profiler::new();
/// let result = Pp2d::new(config)
///     .plan(&map, &mut profiler, &mut rtr_trace::NullTrace)
///     .unwrap();
/// assert_eq!(*result.path.last().unwrap(), (50, 50));
/// ```
#[derive(Debug, Clone)]
pub struct Pp2d {
    config: Pp2dConfig,
}

impl Pp2d {
    /// Creates the kernel.
    pub fn new(config: Pp2dConfig) -> Self {
        Pp2d { config }
    }

    /// Plans a path on `map`. Returns `None` when the goal is unreachable
    /// (or start/goal are themselves in collision).
    ///
    /// Profiler regions: `collision_detection` (footprint probes) and
    /// `graph_search` (everything else in the search loop). The per-check
    /// breakdown needs the hot-timing knob ([`Profiler::timed`]); with a
    /// plain [`Profiler::new`] the solve stays free of per-iteration
    /// clock reads and the whole wall time lands in `graph_search`. The
    /// search replays its open-list operations and row-major cell reads
    /// (8 B per cell) into `trace`; pass [`rtr_trace::NullTrace`] for an
    /// untraced run (the emission compiles away).
    pub fn plan<T: MemTrace + ?Sized>(
        &self,
        map: &GridMap2D,
        profiler: &mut Profiler,
        trace: &mut T,
    ) -> Option<Pp2dResult> {
        let space = CarSpace {
            map,
            goal: (self.config.goal.0 as i64, self.config.goal.1 as i64),
            footprint: self.config.footprint,
            collision: HotRegion::timed(profiler.hot_timing()),
            collision_checks: Cell::new(0),
            cells_probed: Cell::new(0),
        };
        let start = (self.config.start.0 as i64, self.config.start.1 as i64);
        // Reject trivially invalid endpoints (any heading blocked).
        if !space.pose_free(start, 0.0) || !space.pose_free(space.goal, 0.0) {
            return None;
        }

        let width = map.width() as u64;
        let (result, total): (Option<SearchResult<(i64, i64)>>, _) = profiler.span(|| {
            weighted_astar_traced(&space, start, self.config.weight, trace, &mut |n| {
                ((n.1.max(0) as u64) * width + n.0.max(0) as u64) * 8
            })
        });
        let collision = space.collision.total();
        space.collision.drain_into(profiler, "collision_detection");
        profiler.add("graph_search", total.saturating_sub(collision));

        result.map(|r| Pp2dResult {
            path: r
                .path
                .iter()
                .map(|&(x, y)| (x as usize, y as usize))
                .collect(),
            cost: r.cost,
            expanded: r.expanded,
            collision_checks: space.collision_checks.get(),
            cells_probed: space.cells_probed.get(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_geom::maps;
    use rtr_trace::{NullTrace, RecordingTrace};

    fn small_footprint() -> Footprint {
        Footprint::new(1.0, 1.0)
    }

    #[test]
    fn straight_line_in_open_map() {
        let map = GridMap2D::new(32, 32, 1.0);
        let config = Pp2dConfig {
            start: (5, 16),
            goal: (25, 16),
            footprint: small_footprint(),
            weight: 1.0,
        };
        let mut profiler = Profiler::new();
        let r = Pp2d::new(config)
            .plan(&map, &mut profiler, &mut NullTrace)
            .unwrap();
        assert_eq!(r.path.first(), Some(&(5, 16)));
        assert_eq!(r.path.last(), Some(&(25, 16)));
        assert!((r.cost - 20.0).abs() < 1e-9);
    }

    #[test]
    fn detours_around_wall() {
        let mut map = GridMap2D::new(32, 32, 1.0);
        for y in 0..28 {
            map.set_occupied(16, y, true);
        }
        let config = Pp2dConfig {
            start: (5, 5),
            goal: (27, 5),
            footprint: small_footprint(),
            weight: 1.0,
        };
        let mut profiler = Profiler::new();
        let r = Pp2d::new(config)
            .plan(&map, &mut profiler, &mut NullTrace)
            .unwrap();
        // Must climb above y=27 to clear the wall (footprint needs margin).
        assert!(r.path.iter().any(|&(_, y)| y >= 27));
        assert!(r.cost > 22.0);
    }

    #[test]
    fn unreachable_goal_returns_none() {
        let mut map = GridMap2D::new(16, 16, 1.0);
        for y in 0..16 {
            map.set_occupied(8, y, true);
        }
        let config = Pp2dConfig {
            start: (2, 8),
            goal: (14, 8),
            footprint: small_footprint(),
            weight: 1.0,
        };
        let mut profiler = Profiler::new();
        assert!(Pp2d::new(config)
            .plan(&map, &mut profiler, &mut NullTrace)
            .is_none());
    }

    #[test]
    fn start_in_collision_returns_none() {
        let mut map = GridMap2D::new(16, 16, 1.0);
        map.set_occupied(2, 8, true);
        let config = Pp2dConfig {
            start: (2, 8),
            goal: (14, 8),
            footprint: small_footprint(),
            weight: 1.0,
        };
        let mut profiler = Profiler::new();
        assert!(Pp2d::new(config)
            .plan(&map, &mut profiler, &mut NullTrace)
            .is_none());
    }

    #[test]
    fn car_footprint_needs_wider_gaps() {
        // A 1-cell gap passes a 0.8 m robot but not the 1.8 m-wide car.
        let mut map = GridMap2D::new(40, 40, 1.0);
        for y in 0..40usize {
            if y != 19 {
                map.set_occupied(20, y, true);
            }
        }
        let small = Pp2dConfig {
            start: (5, 19),
            goal: (35, 19),
            footprint: Footprint::new(0.8, 0.8),
            weight: 1.0,
        };
        let mut profiler = Profiler::new();
        assert!(Pp2d::new(small)
            .plan(&map, &mut profiler, &mut NullTrace)
            .is_some());
        let car = Pp2dConfig::car((5, 19), (35, 19));
        assert!(Pp2d::new(car)
            .plan(&map, &mut profiler, &mut NullTrace)
            .is_none());
    }

    #[test]
    fn collision_detection_dominates_profile_on_city_map() {
        let map = maps::city_blocks(256, 1.0, 3);
        let config = Pp2dConfig::car((4, 1), (241, 241));
        let mut profiler = Profiler::timed();
        let r = Pp2d::new(config).plan(&map, &mut profiler, &mut NullTrace);
        assert!(r.is_some(), "city map should be traversable on streets");
        profiler.freeze_total();
        let frac = profiler.fraction("collision_detection");
        assert!(frac > 0.5, "collision fraction only {frac}");
    }

    #[test]
    fn weighted_search_expands_fewer_nodes() {
        let map = maps::city_blocks(128, 1.0, 3);
        let mut profiler = Profiler::new();
        let optimal = Pp2d::new(Pp2dConfig {
            weight: 1.0,
            ..Pp2dConfig::car((4, 1), (121, 121))
        })
        .plan(&map, &mut profiler, &mut NullTrace)
        .unwrap();
        let greedy = Pp2d::new(Pp2dConfig {
            weight: 3.0,
            ..Pp2dConfig::car((4, 1), (121, 121))
        })
        .plan(&map, &mut profiler, &mut NullTrace)
        .unwrap();
        assert!(greedy.expanded <= optimal.expanded);
        assert!(greedy.cost <= 3.0 * optimal.cost + 1e-9);
    }

    #[test]
    fn traced_plan_emits_cell_reads_and_open_list_writes() {
        let map = GridMap2D::new(64, 64, 1.0);
        let config = Pp2dConfig {
            start: (5, 5),
            goal: (60, 60),
            footprint: small_footprint(),
            weight: 1.0,
        };
        let mut profiler = Profiler::new();
        let mut rec = RecordingTrace::default();
        let r = Pp2d::new(config.clone())
            .plan(&map, &mut profiler, &mut rec)
            .unwrap();
        // One row-major cell-record read (addresses < 1 << 40) per
        // expansion, plus open-list and bookkeeping traffic on top.
        let cell_reads = rec
            .ops
            .iter()
            .filter(|op| !op.is_write && op.addr < (1 << 40))
            .count() as u64;
        assert_eq!(cell_reads, r.expanded);
        assert!(rec.writes() > 0, "open-list pushes are stores");
        // Tracing never changes the plan.
        let plain = Pp2d::new(config)
            .plan(&map, &mut profiler, &mut NullTrace)
            .unwrap();
        assert_eq!(plain.path, r.path);
        assert_eq!(plain.cost.to_bits(), r.cost.to_bits());
    }

    #[test]
    fn path_is_continuous() {
        // (1, 1) and (121, 121) are always street cells (coordinates ≡ 1
        // modulo the 8-cell block pitch of a 128-cell city).
        let map = maps::city_blocks(128, 1.0, 9);
        let config = Pp2dConfig::car((4, 1), (121, 121));
        let mut profiler = Profiler::new();
        let r = Pp2d::new(config)
            .plan(&map, &mut profiler, &mut NullTrace)
            .unwrap();
        for w in r.path.windows(2) {
            let dx = (w[1].0 as i64 - w[0].0 as i64).abs();
            let dy = (w[1].1 as i64 - w[0].1 as i64).abs();
            assert!(dx <= 1 && dy <= 1 && (dx + dy) > 0);
        }
    }
}

//! RTRBench-rs planning kernels.
//!
//! Planning "is responsible for generating a path from the current position
//! towards a target position" (§III-B). This crate implements the paper's
//! nine planning kernels plus the search substrates they share:
//!
//! - [`search`] — best-first graph search (Dijkstra, A*, Weighted A*) over
//!   a generic [`search::SearchSpace`], with expansion hooks for the cache
//!   simulator.
//! - [`pp2d`] (`04.pp2d`) — 2D grid path planning for a car-sized
//!   footprint. Bottleneck: collision detection (> 65 %).
//! - [`pp3d`] (`05.pp3d`) — 3D grid path planning for a UAV. Bottlenecks:
//!   collision detection and irregular graph search.
//! - [`movtar`] (`06.movtar`) — catching a moving target with a backward-
//!   Dijkstra heuristic and Weighted A* over a time-expanded graph.
//! - [`prm`] (`07.prm`) — probabilistic roadmaps for a 5-DoF arm.
//! - [`rrt`] (`08.rrt`) — rapidly-exploring random trees.
//! - [`rrtstar`] (`09.rrtstar`) — asymptotically optimal RRT*.
//! - [`rrtpp`] (`10.rrtpp`) — RRT with shortcut post-processing.
//! - [`symbolic`] (`11.sym-blkw`, `12.sym-fext`) — a STRIPS-style symbolic
//!   planner with the blocks-world and firefighting domains.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod movtar;
pub mod pp2d;
pub mod pp3d;
pub mod prm;
pub mod rrt;
pub mod rrtpp;
pub mod rrtstar;
pub mod search;
pub mod symbolic;

pub use movtar::{MovingTarget, MovtarConfig, MovtarResult};
pub use pp2d::{Pp2d, Pp2dConfig, Pp2dResult};
pub use pp3d::{Pp3d, Pp3dConfig, Pp3dResult};
pub use prm::{Prm, PrmConfig, PrmResult};
pub use rrt::{ArmProblem, Rrt, RrtConfig, RrtResult};
pub use rrtpp::{RrtPp, RrtPpResult};
pub use rrtstar::{RrtStar, RrtStarResult, RrtStarRun};
pub use search::{
    anytime_weighted_astar, astar, dijkstra, weighted_astar, AnytimeSolution, SearchResult,
    SearchSpace,
};
pub use symbolic::{blocks_world, firefight, Domain, Plan, SymbolicPlanner};

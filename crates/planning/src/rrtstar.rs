//! `09.rrtstar` — asymptotically optimal RRT*.
//!
//! RRT* "improves path quality by rewiring the tree: when a random sample
//! is added to the tree, near neighbors are evaluated and the connections
//! change if the addition of the new node can reduce the path cost" (the
//! paper's Fig. 11). The price is that the planner keeps sampling for its
//! whole budget instead of stopping at the first connection — the paper
//! measures RRT* "significantly slower (up to 8×) ... but generates
//! shorter paths (1.6× on average)" than RRT, with the nearest-neighbor
//! share of execution growing to ~49 % because of the per-sample
//! neighborhood queries.

use rtr_harness::Profiler;
use rtr_sim::SimRng;
use rtr_trace::MemTrace;

use crate::rrt::{config_distance, steer, ArmProblem, Config, RrtConfig, RrtResult, Tree};

/// Result of an RRT* run (same shape as RRT's, plus rewiring stats).
#[derive(Debug, Clone)]
pub struct RrtStarResult {
    /// The underlying path/cost/counters.
    pub base: RrtResult,
    /// Rewiring operations that actually changed a parent.
    pub rewirings: u64,
    /// Goal connections found over the run (the best one is returned).
    pub goal_connections: u64,
}

/// Loop state of one anytime RRT* search over a fixed [`ArmProblem`].
///
/// Created by [`RrtStar::begin`], advanced one sample at a time by
/// [`RrtStar::sample_step`], and turned into an [`RrtStarResult`] by
/// [`RrtStar::finish_plan`]. The search is *anytime*: after the first
/// goal connection every further step can only shorten the best path, so
/// a caller may stop early at any point and still harvest a valid plan.
#[derive(Debug)]
pub struct RrtStarRun {
    rng: SimRng,
    tree: Tree,
    /// Per-sample neighborhood results land in this reused buffer; after
    /// a few samples its capacity plateaus and the ~49 %-of-time NN
    /// region runs allocation-free.
    neighbors: Vec<(usize, f64)>,
    nn_queries: u64,
    collision_checks: u64,
    rewirings: u64,
    goal_connections: u64,
    /// Best goal attachment: (tree node holding the goal config's
    /// parent, cost through it).
    best_goal: Option<(usize, f64)>,
    first_connection: Option<usize>,
    samples_used: usize,
    sample_idx: usize,
    /// Start or goal began in collision: the search never runs.
    blocked: bool,
}

impl RrtStarRun {
    /// `true` once at least one goal connection exists — stopping now
    /// yields a valid (if not yet fully refined) plan.
    pub fn has_plan(&self) -> bool {
        self.best_goal.is_some()
    }

    /// Samples consumed so far.
    pub fn samples_used(&self) -> usize {
        self.samples_used
    }
}

/// The RRT* kernel.
///
/// # Example
///
/// ```
/// use rtr_planning::{ArmProblem, RrtConfig, RrtStar};
/// use rtr_harness::Profiler;
///
/// let problem = ArmProblem::map_f(1);
/// let mut profiler = Profiler::new();
/// let result = RrtStar::new(RrtConfig { max_samples: 4000, ..Default::default() })
///     .plan(&problem, &mut profiler, &mut rtr_trace::NullTrace)
///     .expect("solvable");
/// assert!(problem.path_valid(&result.base.path));
/// ```
#[derive(Debug, Clone)]
pub struct RrtStar {
    config: RrtConfig,
}

impl RrtStar {
    /// Creates the kernel.
    pub fn new(config: RrtConfig) -> Self {
        RrtStar { config }
    }

    /// Runs RRT* for the full sample budget, returning the best goal path
    /// found (or `None` if the goal was never connected).
    ///
    /// Profiler regions: `sampling`, `nn_search` (nearest + neighborhood
    /// queries), `collision_detection` (extension, parent-choice and
    /// rewiring checks). With a live `trace` sink, both NN query kinds
    /// emit 40-byte configuration reads per visited node, and accepted
    /// extensions/rewirings write the touched arena slots.
    pub fn plan<T: MemTrace + ?Sized>(
        &self,
        problem: &ArmProblem,
        profiler: &mut Profiler,
        trace: &mut T,
    ) -> Option<RrtStarResult> {
        let mut run = self.begin(problem);
        while self.sample_step(&mut run, problem, profiler, &mut *trace) {}
        self.finish_plan(run, problem)
    }

    /// Starts an anytime search: seeds the RNG, roots the tree at the
    /// start configuration, and zeroes the counters. Drive the returned
    /// [`RrtStarRun`] with [`RrtStar::sample_step`] until it returns
    /// `false` (or stop early once [`RrtStarRun::has_plan`]), then call
    /// [`RrtStar::finish_plan`]; the full sequence is exactly
    /// [`RrtStar::plan`], bit for bit.
    pub fn begin(&self, problem: &ArmProblem) -> RrtStarRun {
        let blocked = problem.in_collision(&problem.start) || problem.in_collision(&problem.goal);
        RrtStarRun {
            rng: SimRng::seed_from(self.config.seed),
            tree: Tree::new_in(self.config.kd_layout, problem.start),
            neighbors: Vec::new(),
            nn_queries: 0,
            collision_checks: 0,
            rewirings: 0,
            goal_connections: 0,
            best_goal: None,
            first_connection: None,
            samples_used: 0,
            sample_idx: 0,
            blocked,
        }
    }

    /// Advances an anytime search by one sample: sampling, nearest and
    /// neighborhood queries, parent choice, rewiring, and goal tracking —
    /// the full Fig. 11 iteration. Returns `true` while budget remains,
    /// `false` once the sample budget (or the refine budget after the
    /// first goal connection) is exhausted. Steady-state calls are
    /// allocation-free after the neighborhood buffer plateaus.
    pub fn sample_step<T: MemTrace + ?Sized>(
        &self,
        run: &mut RrtStarRun,
        problem: &ArmProblem,
        profiler: &mut Profiler,
        trace: &mut T,
    ) -> bool {
        if run.blocked || run.sample_idx >= self.config.max_samples {
            return false;
        }
        if let (Some(factor), Some(first)) = (self.config.star_refine_factor, run.first_connection)
        {
            let budget = ((first as f64 * factor) as usize).max(first + 50);
            if run.sample_idx >= budget {
                return false;
            }
        }
        let sample_idx = run.sample_idx;
        run.sample_idx += 1;
        run.samples_used = sample_idx + 1;
        let tree = &mut run.tree;
        let sample_start = profiler.hot_start();
        let target = if run.rng.chance(self.config.goal_bias) {
            problem.goal
        } else {
            problem.sample(&mut run.rng)
        };
        profiler.hot_add("sampling", sample_start);

        // Nearest node.
        let nn_start = profiler.hot_start();
        run.nn_queries += 1;
        let (nearest_id, _) = nearest(tree, &target, &mut *trace);
        profiler.hot_add("nn_search", nn_start);

        let new_config = steer(&tree.nodes[nearest_id], &target, self.config.epsilon);

        let col_start = profiler.hot_start();
        run.collision_checks += 1;
        let free = problem.motion_free(&tree.nodes[nearest_id], &new_config);
        profiler.hot_add("collision_detection", col_start);
        if !free {
            return true;
        }

        // Neighborhood query (the paper's yellow circle).
        let nn_start = profiler.hot_start();
        run.nn_queries += 1;
        neighborhood_into(
            tree,
            &new_config,
            self.config.neighbor_radius,
            &mut *trace,
            &mut run.neighbors,
        );
        profiler.hot_add("nn_search", nn_start);

        // Choose the cheapest collision-free parent among neighbors.
        let mut parent = nearest_id;
        let mut parent_cost =
            tree.costs[nearest_id] + config_distance(&tree.nodes[nearest_id], &new_config);
        for &(candidate, _) in &run.neighbors {
            let through =
                tree.costs[candidate] + config_distance(&tree.nodes[candidate], &new_config);
            if through < parent_cost {
                let col_start = profiler.hot_start();
                run.collision_checks += 1;
                let free = problem.motion_free(&tree.nodes[candidate], &new_config);
                profiler.hot_add("collision_detection", col_start);
                if free {
                    parent = candidate;
                    parent_cost = through;
                }
            }
        }
        let new_id = tree.add(new_config, parent);
        if trace.enabled() {
            trace.write(new_id as u64 * 40);
        }

        // Rewire neighbors through the new node when cheaper.
        for &(neighbor, _) in &run.neighbors {
            if neighbor == parent {
                continue;
            }
            let through = tree.costs[new_id] + config_distance(&new_config, &tree.nodes[neighbor]);
            if through + 1e-12 < tree.costs[neighbor] {
                let col_start = profiler.hot_start();
                run.collision_checks += 1;
                let free = problem.motion_free(&new_config, &tree.nodes[neighbor]);
                profiler.hot_add("collision_detection", col_start);
                if free {
                    let delta = tree.costs[neighbor] - through;
                    tree.reparent(neighbor, new_id);
                    propagate_cost_reduction(tree, neighbor, delta);
                    run.rewirings += 1;
                    if trace.enabled() {
                        // Parent-pointer update in the rewired node.
                        trace.write(neighbor as u64 * 40);
                    }
                }
            }
        }

        // Track the best goal connection but keep optimizing.
        if config_distance(&new_config, &problem.goal) <= problem.goal_tolerance {
            let col_start = profiler.hot_start();
            run.collision_checks += 1;
            let free = problem.motion_free(&new_config, &problem.goal);
            profiler.hot_add("collision_detection", col_start);
            if free {
                run.goal_connections += 1;
                if run.first_connection.is_none() {
                    run.first_connection = Some(sample_idx + 1);
                }
                let cost = tree.costs[new_id] + config_distance(&new_config, &problem.goal);
                if run.best_goal.is_none_or(|(_, c)| cost < c) {
                    run.best_goal = Some((new_id, cost));
                }
            }
        }
        true
    }

    /// Completes an anytime search: extracts the best goal path found so
    /// far (or `None` if the goal was never connected) and assembles the
    /// result.
    pub fn finish_plan(&self, run: RrtStarRun, problem: &ArmProblem) -> Option<RrtStarResult> {
        let (attach_id, _) = run.best_goal?;
        // Re-derive the final cost from the tree: rewiring may have
        // improved the attachment node's cost-to-come since recording.
        let mut path = run.tree.path_to(attach_id);
        path.push(problem.goal);
        Some(RrtStarResult {
            base: RrtResult {
                cost: problem.path_cost(&path),
                path,
                samples: run.samples_used,
                tree_size: run.tree.nodes.len(),
                nn_queries: run.nn_queries,
                collision_checks: run.collision_checks,
            },
            rewirings: run.rewirings,
            goal_connections: run.goal_connections,
        })
    }
}

fn nearest<T: MemTrace + ?Sized>(tree: &Tree, target: &Config, trace: &mut T) -> (usize, f64) {
    if trace.enabled() {
        tree.index
            .nearest_with(target, |payload| trace.read(payload as u64 * 40))
            .expect("tree non-empty")
    } else {
        tree.index.nearest(target).expect("tree non-empty")
    }
}

/// Radius query into a caller-owned buffer (`out` is cleared first). The
/// plan loop reuses one buffer across samples, so the per-sample `Vec`
/// allocation the neighborhood query used to pay is gone after warmup.
fn neighborhood_into<T: MemTrace + ?Sized>(
    tree: &Tree,
    center: &Config,
    radius: f64,
    trace: &mut T,
    out: &mut Vec<(usize, f64)>,
) {
    tree.index.within_radius_into(center, radius, out);
    if trace.enabled() {
        for &(payload, _) in out.iter() {
            trace.read(payload as u64 * 40);
        }
    }
}

/// After rewiring `root` to a cheaper parent, every descendant's
/// cost-to-come drops by the same delta.
///
/// Walks only the rewired subtree through the tree's child adjacency —
/// O(subtree) per rewiring instead of the old O(tree × subtree) arena
/// scan, which made late-stage rewirings quadratic in tree size. The scan
/// implementation survives as [`propagate_cost_reduction_scan`] for the
/// equivalence proptest.
fn propagate_cost_reduction(tree: &mut Tree, root: usize, delta: f64) {
    let costs = &mut tree.costs;
    let children = &tree.children;
    costs[root] -= delta;
    let mut stack: Vec<usize> = children[root].to_vec();
    while let Some(current) = stack.pop() {
        costs[current] -= delta;
        stack.extend_from_slice(&children[current]);
    }
}

/// The pre-adjacency-list propagation: one full arena scan per visited
/// node, operating on the raw parent/cost arrays. Kept (test-only) as the
/// oracle the proptest checks the subtree walk against.
#[cfg(test)]
fn propagate_cost_reduction_scan(parents: &[usize], costs: &mut [f64], root: usize, delta: f64) {
    costs[root] -= delta;
    let mut stack = vec![root];
    while let Some(current) = stack.pop() {
        for (id, &parent) in parents.iter().enumerate() {
            if parent == current && id != current {
                costs[id] -= delta;
                stack.push(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rrt::Rrt;
    use rtr_trace::{NullTrace, RecordingTrace};

    fn small_budget() -> RrtConfig {
        RrtConfig {
            max_samples: 3_000,
            ..Default::default()
        }
    }

    #[test]
    fn finds_valid_path() {
        let problem = ArmProblem::map_f(1);
        let mut profiler = Profiler::new();
        let r = RrtStar::new(small_budget())
            .plan(&problem, &mut profiler, &mut NullTrace)
            .expect("solvable");
        assert!(problem.path_valid(&r.base.path));
        assert!(r.goal_connections >= 1);
    }

    #[test]
    fn cheaper_than_rrt_on_same_problem() {
        // The paper's headline: RRT* paths are shorter (1.6× on average).
        let mut star_total = 0.0;
        let mut rrt_total = 0.0;
        for seed in 0..3 {
            let problem = ArmProblem::map_f(10 + seed);
            let mut p = Profiler::new();
            let rrt = Rrt::new(RrtConfig {
                seed,
                ..Default::default()
            })
            .plan(&problem, &mut p, &mut NullTrace)
            .expect("solvable");
            let star = RrtStar::new(RrtConfig {
                seed,
                max_samples: 4_000,
                ..Default::default()
            })
            .plan(&problem, &mut p, &mut NullTrace)
            .expect("solvable");
            star_total += star.base.cost;
            rrt_total += rrt.cost;
        }
        assert!(
            star_total < rrt_total,
            "RRT* ({star_total:.2}) should beat RRT ({rrt_total:.2}) in cost"
        );
    }

    #[test]
    fn does_more_work_than_rrt() {
        let problem = ArmProblem::map_f(2);
        let mut p = Profiler::new();
        let rrt = Rrt::new(RrtConfig::default())
            .plan(&problem, &mut p, &mut NullTrace)
            .unwrap();
        let star = RrtStar::new(small_budget())
            .plan(&problem, &mut p, &mut NullTrace)
            .unwrap();
        assert!(star.base.collision_checks > rrt.collision_checks);
        assert!(star.base.nn_queries > rrt.nn_queries);
    }

    #[test]
    fn rewiring_happens() {
        let problem = ArmProblem::map_f(3);
        let mut p = Profiler::new();
        let r = RrtStar::new(small_budget())
            .plan(&problem, &mut p, &mut NullTrace)
            .unwrap();
        assert!(r.rewirings > 0, "no rewiring in {} samples", r.base.samples);
    }

    #[test]
    fn tree_costs_stay_consistent_after_rewiring() {
        // Cost bookkeeping invariant: every node's recorded cost equals
        // the sum of edge lengths along its parent chain.
        let problem = ArmProblem::map_c(4);
        let mut p = Profiler::new();
        let config = RrtConfig {
            max_samples: 2_000,
            ..Default::default()
        };
        // Re-run the planner but inspect internals through the result: the
        // returned path cost must equal the recomputed edge-sum cost.
        let r = RrtStar::new(config).plan(&problem, &mut p, &mut NullTrace);
        if let Some(r) = r {
            let recomputed = problem.path_cost(&r.base.path);
            assert!((recomputed - r.base.cost).abs() < 1e-9);
        }
    }

    #[test]
    fn refine_factor_bounds_work() {
        let problem = ArmProblem::map_f(6);
        let mut p = Profiler::new();
        let full = RrtStar::new(RrtConfig {
            max_samples: 5_000,
            ..Default::default()
        })
        .plan(&problem, &mut p, &mut NullTrace)
        .expect("solvable");
        let bounded = RrtStar::new(RrtConfig {
            max_samples: 5_000,
            star_refine_factor: Some(4.0),
            ..Default::default()
        })
        .plan(&problem, &mut p, &mut NullTrace)
        .expect("solvable");
        assert!(bounded.base.samples <= full.base.samples);
        assert!(bounded.base.collision_checks <= full.base.collision_checks);
        assert!(problem.path_valid(&bounded.base.path));
    }

    mod propagation {
        use super::super::*;
        use proptest::prelude::*;
        use std::f64::consts::PI;

        /// `true` when `candidate` sits in `node`'s subtree (including
        /// `node` itself) — reparenting onto such a candidate would cut a
        /// cycle into the tree, which neither implementation defends
        /// against.
        fn in_subtree(parents: &[usize], node: usize, mut candidate: usize) -> bool {
            loop {
                if candidate == node {
                    return true;
                }
                if parents[candidate] == candidate {
                    return false;
                }
                candidate = parents[candidate];
            }
        }

        proptest! {
            #[test]
            fn subtree_walk_matches_arena_scan(
                seed in 0u64..500,
                n in 2usize..48,
                ops in 1usize..10,
            ) {
                let mut rng = SimRng::seed_from(seed);
                let mut tree = Tree::new_in(rtr_geom::KdLayout::default(), [0.0; crate::rrt::DOF]);
                for _ in 1..n {
                    let parent = rng.below(tree.nodes.len());
                    let mut c = [0.0; crate::rrt::DOF];
                    for v in &mut c {
                        *v = rng.uniform(-PI, PI);
                    }
                    tree.add(c, parent);
                }
                // Mirror arrays driven by the legacy full-scan oracle.
                let mut oracle_parents = tree.parents.clone();
                let mut oracle_costs = tree.costs.clone();
                for _ in 0..ops {
                    let node = 1 + rng.below(tree.nodes.len() - 1);
                    let new_parent = rng.below(tree.nodes.len());
                    if in_subtree(&tree.parents, node, new_parent) {
                        continue;
                    }
                    let delta = rng.uniform(0.01, 0.5);
                    tree.reparent(node, new_parent);
                    propagate_cost_reduction(&mut tree, node, delta);
                    oracle_parents[node] = new_parent;
                    propagate_cost_reduction_scan(&oracle_parents, &mut oracle_costs, node, delta);
                    prop_assert_eq!(&tree.parents, &oracle_parents);
                    for (id, (a, b)) in tree.costs.iter().zip(oracle_costs.iter()).enumerate() {
                        prop_assert_eq!(a.to_bits(), b.to_bits(), "cost diverged at node {}", id);
                    }
                }
            }
        }
    }

    #[test]
    fn kd_layouts_plan_identically() {
        use rtr_geom::KdLayout;
        let problem = ArmProblem::map_f(7);
        let mut p = Profiler::new();
        let legacy = RrtStar::new(RrtConfig {
            max_samples: 2_000,
            kd_layout: KdLayout::NodeLegacy,
            ..Default::default()
        })
        .plan(&problem, &mut p, &mut NullTrace)
        .expect("solvable");
        let bucket = RrtStar::new(RrtConfig {
            max_samples: 2_000,
            kd_layout: KdLayout::BucketSoA,
            ..Default::default()
        })
        .plan(&problem, &mut p, &mut NullTrace)
        .expect("solvable");
        assert_eq!(legacy.base.samples, bucket.base.samples);
        assert_eq!(legacy.base.cost.to_bits(), bucket.base.cost.to_bits());
        assert_eq!(legacy.rewirings, bucket.rewirings);
        assert_eq!(legacy.base.collision_checks, bucket.base.collision_checks);
        for (a, b) in legacy.base.path.iter().zip(bucket.base.path.iter()) {
            for i in 0..crate::rrt::DOF {
                assert_eq!(a[i].to_bits(), b[i].to_bits());
            }
        }
    }

    #[test]
    fn neighborhood_buffer_plateaus_after_warmup() {
        use std::f64::consts::PI;
        let mut rng = SimRng::seed_from(9);
        let mut tree = Tree::new_in(rtr_geom::KdLayout::default(), [0.0; crate::rrt::DOF]);
        for _ in 1..512 {
            let parent = rng.below(tree.nodes.len());
            let mut c = [0.0; crate::rrt::DOF];
            for v in &mut c {
                *v = rng.uniform(-PI, PI);
            }
            tree.add(c, parent);
        }
        let queries: Vec<Config> = (0..32)
            .map(|_| {
                let mut q = [0.0; crate::rrt::DOF];
                for v in &mut q {
                    *v = rng.uniform(-1.0, 1.0);
                }
                q
            })
            .collect();
        let mut buf: Vec<(usize, f64)> = Vec::new();
        // Warmup pass grows the buffer to the largest neighborhood seen.
        for q in &queries {
            neighborhood_into(&tree, q, 2.0, &mut NullTrace, &mut buf);
        }
        assert!(!buf.is_empty(), "radius too small to exercise the buffer");
        let cap = buf.capacity();
        // Replaying the same workload must not grow it again, and every
        // result must match the allocating twin.
        for (i, q) in queries.iter().enumerate() {
            let expected = tree.index.within_radius(q, 2.0);
            neighborhood_into(&tree, q, 2.0, &mut NullTrace, &mut buf);
            assert_eq!(buf, expected, "query {i} diverged from allocating twin");
        }
        assert_eq!(
            buf.capacity(),
            cap,
            "replaying the workload must reuse the buffer"
        );
    }

    #[test]
    fn traced_plan_is_bit_identical_and_writes_rewired_slots() {
        let problem = ArmProblem::map_f(8);
        let mut p = Profiler::new();
        let config = RrtConfig {
            max_samples: 2_000,
            ..Default::default()
        };
        let mut rec = RecordingTrace::default();
        let traced = RrtStar::new(config.clone())
            .plan(&problem, &mut p, &mut rec)
            .expect("solvable");
        let plain = RrtStar::new(config)
            .plan(&problem, &mut p, &mut NullTrace)
            .expect("solvable");
        assert_eq!(traced.base.cost.to_bits(), plain.base.cost.to_bits());
        assert_eq!(traced.rewirings, plain.rewirings);
        // One arena write per added node plus one per rewiring.
        assert_eq!(
            rec.writes(),
            traced.base.tree_size as u64 - 1 + traced.rewirings
        );
        assert!(rec.reads() > rec.writes());
    }

    #[test]
    fn solves_cluttered_map() {
        let problem = ArmProblem::map_c(5);
        let mut p = Profiler::new();
        let r = RrtStar::new(RrtConfig {
            max_samples: 12_000,
            ..Default::default()
        })
        .plan(&problem, &mut p, &mut NullTrace)
        .expect("map-c solvable");
        assert!(problem.path_valid(&r.base.path));
    }
}

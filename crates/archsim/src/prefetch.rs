//! VLDP-style variable-length delta prefetcher.
//!
//! The paper evaluates "an over-approximated implementation of VLDP
//! \[Shevgoor et al., MICRO 2015\]" on `05.pp3d` and reports that it
//! eliminates around one-third of the data misses. This module implements
//! the same idea at the same level of approximation: per-page delta
//! histories feed delta-prediction tables of increasing history length;
//! on each access the longest matching history predicts the next line
//! delta(s) and the predicted lines are prefetched.

use std::collections::{HashMap, VecDeque};

/// Counters describing prefetcher behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Prefetch requests issued.
    pub issued: u64,
    /// Requests that found the line already resident (wasted).
    pub redundant: u64,
}

/// Number of pages tracked simultaneously (VLDP's DHB is small; 64 entries
/// over-approximates it, consistent with the paper's "over-approximated"
/// evaluation).
const HISTORY_CAPACITY: usize = 4096;

/// History length used by the deepest delta-prediction table.
const MAX_HISTORY: usize = 3;

#[derive(Debug, Clone, Copy, Default)]
struct PageEntry {
    /// Last accessed line offset within the page.
    last_line: i64,
    /// Most recent line-deltas, newest last; only `len` slots are live.
    /// Fixed-size because deltas beyond [`MAX_HISTORY`] never train or
    /// predict — keeping a `Vec` here put an allocation on every tracked
    /// page for no reason.
    deltas: [i64; MAX_HISTORY],
    len: usize,
}

impl PageEntry {
    /// Appends a delta, dropping the oldest once `MAX_HISTORY` are live.
    fn push(&mut self, delta: i64) {
        if self.len == MAX_HISTORY {
            self.deltas.copy_within(1.., 0);
            self.deltas[MAX_HISTORY - 1] = delta;
        } else {
            self.deltas[self.len] = delta;
            self.len += 1;
        }
    }

    /// The live suffix, oldest first.
    fn history(&self) -> &[i64] {
        &self.deltas[..self.len]
    }
}

/// Right-aligns a history suffix into a fixed-size table key, zero-padded
/// on the left. Unambiguous because recorded deltas are never zero (zero
/// deltas neither train nor extend the history), so padding cannot
/// collide with a real shorter history — and each table only holds keys
/// of one length anyway.
fn table_key(history: &[i64]) -> [i64; MAX_HISTORY] {
    let mut key = [0i64; MAX_HISTORY];
    key[MAX_HISTORY - history.len()..].copy_from_slice(history);
    key
}

/// A multi-table delta prefetcher in the spirit of VLDP.
///
/// Tracks, per 4 KiB page, the sequence of line-address deltas, and learns
/// `history → next delta` mappings for history lengths 1 to 3. On each
/// access it predicts with the longest history that has a learned
/// successor and returns up to `degree` prefetch candidates.
///
/// # Example
///
/// ```
/// use rtr_archsim::VldpPrefetcher;
///
/// let mut pf = VldpPrefetcher::new(2);
/// // Train on a +1-line stream.
/// for i in 0..8u64 {
///     pf.observe(i * 64);
/// }
/// let predictions = pf.observe(8 * 64);
/// assert!(predictions.contains(&(9 * 64)));
/// ```
#[derive(Debug, Clone)]
pub struct VldpPrefetcher {
    /// `history (exactly len deltas, right-aligned) → predicted next
    /// delta`; `tables[len - 1]` holds the length-`len` histories.
    tables: Vec<HashMap<[i64; MAX_HISTORY], i64>>,
    pages: HashMap<u64, PageEntry>,
    /// Insertion order for page-entry eviction (oldest at the front).
    page_order: VecDeque<u64>,
    degree: usize,
    stats: PrefetchStats,
    line_bytes: u64,
    page_bytes: u64,
}

impl VldpPrefetcher {
    /// Creates a prefetcher issuing up to `degree` prefetches per access.
    ///
    /// # Panics
    ///
    /// Panics if `degree == 0`.
    pub fn new(degree: usize) -> Self {
        assert!(degree > 0, "prefetch degree must be positive");
        VldpPrefetcher {
            tables: vec![HashMap::new(); MAX_HISTORY],
            pages: HashMap::new(),
            page_order: VecDeque::new(),
            degree,
            stats: PrefetchStats::default(),
            line_bytes: 64,
            page_bytes: 4096,
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }

    /// Notes a redundant prefetch (the hierarchy reports back).
    pub(crate) fn note_redundant(&mut self) {
        self.stats.redundant += 1;
    }

    /// Observes a demand access and returns predicted prefetch addresses.
    pub fn observe(&mut self, addr: u64) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.degree);
        self.observe_into(addr, &mut out);
        out
    }

    /// Like [`observe`](VldpPrefetcher::observe) but appends predictions
    /// into a caller-owned buffer (cleared first), so a simulation loop
    /// observing millions of accesses allocates nothing per access.
    pub fn observe_into(&mut self, addr: u64, out: &mut Vec<u64>) {
        out.clear();
        let page = addr / self.page_bytes;
        let line = ((addr % self.page_bytes) / self.line_bytes) as i64;

        let entry = match self.pages.get_mut(&page) {
            Some(e) => e,
            None => {
                if self.pages.len() >= HISTORY_CAPACITY {
                    // Evict the oldest tracked page.
                    if let Some(old) = self.page_order.pop_front() {
                        self.pages.remove(&old);
                    }
                }
                self.page_order.push_back(page);
                self.pages.entry(page).or_insert_with(|| PageEntry {
                    last_line: line,
                    ..PageEntry::default()
                })
            }
        };

        let delta = line - entry.last_line;
        if delta != 0 {
            // Train each table with the history that preceded this delta.
            for (len, table) in self.tables.iter_mut().enumerate() {
                let len = len + 1;
                if entry.len >= len {
                    table.insert(table_key(&entry.deltas[entry.len - len..entry.len]), delta);
                }
            }
            entry.push(delta);
            entry.last_line = line;
        }

        // Predict: walk forward `degree` steps using the longest history.
        // PageEntry is all-inline (`Copy`), so this is a register copy.
        let mut history = *entry;
        let mut predicted_line = line;
        for _ in 0..self.degree {
            let mut next_delta = None;
            for len in (1..=history.len).rev() {
                let key = table_key(&history.history()[history.len - len..]);
                if let Some(&d) = self.tables[len - 1].get(&key) {
                    next_delta = Some(d);
                    break;
                }
            }
            let Some(d) = next_delta else { break };
            predicted_line += d;
            let lines_per_page = (self.page_bytes / self.line_bytes) as i64;
            if predicted_line < 0 || predicted_line >= lines_per_page {
                break; // VLDP does not cross page boundaries
            }
            out.push(page * self.page_bytes + predicted_line as u64 * self.line_bytes);
            self.stats.issued += 1;
            history.push(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_unit_stride() {
        let mut pf = VldpPrefetcher::new(1);
        for i in 0..4u64 {
            pf.observe(i * 64);
        }
        let preds = pf.observe(4 * 64);
        assert_eq!(preds, vec![5 * 64]);
    }

    #[test]
    fn learns_large_stride() {
        let mut pf = VldpPrefetcher::new(1);
        for i in 0..5u64 {
            pf.observe(i * 256); // delta of 4 lines
        }
        let preds = pf.observe(5 * 256);
        assert_eq!(preds, vec![6 * 256]);
    }

    #[test]
    fn degree_two_predicts_two_lines() {
        let mut pf = VldpPrefetcher::new(2);
        for i in 0..6u64 {
            pf.observe(i * 64);
        }
        let preds = pf.observe(6 * 64);
        assert_eq!(preds, vec![7 * 64, 8 * 64]);
    }

    #[test]
    fn learns_alternating_pattern_with_depth() {
        // Deltas +1, +3, +1, +3… require history length ≥ 1 keyed on the
        // previous delta; VLDP's multi-table design captures it.
        let mut pf = VldpPrefetcher::new(1);
        let mut line = 0u64;
        let mut addrs = vec![0u64];
        for i in 0..10 {
            line += if i % 2 == 0 { 1 } else { 3 };
            addrs.push(line * 64);
        }
        let mut last_preds = Vec::new();
        for &a in &addrs {
            last_preds = pf.observe(a);
        }
        // After ...+1,+3 the next delta is +1.
        let expected = (line + 1) * 64;
        assert_eq!(last_preds, vec![expected]);
    }

    #[test]
    fn does_not_cross_page_boundary() {
        let mut pf = VldpPrefetcher::new(4);
        // Train +1 stride near the end of a page.
        let base = 4096 - 4 * 64;
        for i in 0..4u64 {
            pf.observe(base + i * 64);
        }
        let preds = pf.observe(4096 - 64);
        assert!(preds.is_empty(), "predicted across a page: {preds:?}");
    }

    #[test]
    fn no_prediction_without_history() {
        let mut pf = VldpPrefetcher::new(2);
        assert!(pf.observe(0).is_empty());
        assert!(pf.observe(4096 * 7).is_empty()); // new page
    }

    #[test]
    fn repeated_same_line_predicts_nothing_new() {
        let mut pf = VldpPrefetcher::new(1);
        pf.observe(64);
        pf.observe(64);
        let preds = pf.observe(64);
        assert!(preds.is_empty());
    }

    #[test]
    fn page_eviction_bounds_memory() {
        let mut pf = VldpPrefetcher::new(1);
        for p in 0..(HISTORY_CAPACITY as u64 + 100) {
            pf.observe(p * 4096);
        }
        assert!(pf.pages.len() <= HISTORY_CAPACITY);
    }
}

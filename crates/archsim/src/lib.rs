//! Trace-driven cache-hierarchy simulator for RTRBench-rs.
//!
//! The paper characterizes its kernels on the zsim micro-architectural
//! simulator, modeling an Intel Core i3-8109U (two cores, 3 GHz, 4 MB
//! last-level cache, LPDDR3-2133). zsim itself is a large external
//! artifact, so this crate implements the part of it the paper's
//! architectural claims rest on: a set-associative, LRU, inclusive cache
//! hierarchy driven by the kernels' data-access traces, plus a VLDP-style
//! multi-delta prefetcher (the paper evaluates "an over-approximated
//! implementation of VLDP" and finds it eliminates about one-third of
//! `05.pp3d`'s data misses).
//!
//! Kernels expose *traced* execution paths that replay every data-structure
//! access (grid-cell probes, k-d-tree node visits, open-list pops) into a
//! [`MemorySim`]; the resulting miss ratios and MPKI reproduce the paper's
//! cache-behaviour findings (e.g. the 12–22 % L1D miss ratio of `08.rrt`'s
//! nearest-neighbor search).
//!
//! # Example
//!
//! ```
//! use rtr_archsim::{CacheConfig, MemorySim};
//!
//! let mut sim = MemorySim::i3_8109u();
//! // A strided streaming pattern: mostly hits after each line is fetched.
//! for i in 0..10_000u64 {
//!     sim.read(i * 8);
//! }
//! let stats = sim.level_stats(0);
//! assert!(stats.miss_ratio() < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod hierarchy;
mod prefetch;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{HierarchyReport, MemorySim};
pub use prefetch::{PrefetchStats, VldpPrefetcher};

//! A single set-associative cache level.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Cache-line size in bytes (must be a power of two).
    pub line_bytes: usize,
}

impl CacheConfig {
    /// A 32 KiB, 8-way L1 data cache with 64-byte lines (i3-8109U).
    pub fn l1d_default() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
        }
    }

    /// A 256 KiB, 4-way private L2 with 64-byte lines (i3-8109U).
    pub fn l2_default() -> Self {
        CacheConfig {
            size_bytes: 256 * 1024,
            ways: 4,
            line_bytes: 64,
        }
    }

    /// A 4 MiB, 16-way shared LLC with 64-byte lines — the paper's "4 MB
    /// on-chip cache".
    pub fn llc_default() -> Self {
        CacheConfig {
            size_bytes: 4 * 1024 * 1024,
            ways: 16,
            line_bytes: 64,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses (excludes prefetch fills).
    pub accesses: u64,
    /// Demand misses.
    pub misses: u64,
    /// Demand write accesses (stores); reads are `accesses - writes`.
    pub writes: u64,
    /// Demand write misses; read misses are `misses - write_misses`.
    pub write_misses: u64,
    /// Demand hits on lines brought in by the prefetcher.
    pub prefetch_hits: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Demand hits.
    pub fn hits(&self) -> u64 {
        self.accesses - self.misses
    }

    /// Demand read accesses (loads).
    pub fn reads(&self) -> u64 {
        self.accesses - self.writes
    }

    /// Demand read misses.
    pub fn read_misses(&self) -> u64 {
        self.misses - self.write_misses
    }

    /// Miss ratio in `[0, 1]`; `0.0` when no accesses occurred.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Misses per kilo-access (a stand-in for MPKI when instruction counts
    /// are unavailable; the traced kernels report accesses, not
    /// instructions).
    pub fn mpka(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    /// Logical timestamp of the last touch (LRU).
    last_use: u64,
    /// Set when the line was filled by the prefetcher and not yet
    /// demand-hit.
    prefetched: bool,
    /// Set when the line has been written since it was filled
    /// (write-back policy: evicting it costs a writeback).
    dirty: bool,
}

/// One set-associative, write-allocate, LRU cache level.
///
/// # Example
///
/// ```
/// use rtr_archsim::{Cache, CacheConfig};
///
/// let mut l1 = Cache::new(CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64 });
/// assert!(!l1.access(0x0));  // cold miss
/// assert!(l1.access(0x8));   // same line: hit
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// All lines in one flat allocation, set-major: set `s` occupies
    /// `lines[s * ways .. (s + 1) * ways]`. Keeps a whole set on one or
    /// two cache lines of the *host* machine during the way scan.
    lines: Vec<Line>,
    clock: u64,
    stats: CacheStats,
    line_shift: u32,
    set_mask: u64,
    set_bits: u32,
    /// Line address of the dirty victim evicted by the most recent fill,
    /// consumed by the hierarchy to propagate the write-back downward.
    pending_writeback: Option<u64>,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics unless the geometry is consistent: positive ways, power-of-two
    /// line size, and a whole number of power-of-two sets.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.ways > 0, "cache needs at least one way");
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = config.sets();
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count must be a positive power of two (got {sets})"
        );
        assert_eq!(
            sets * config.ways * config.line_bytes,
            config.size_bytes,
            "size must equal sets * ways * line"
        );
        Cache {
            config,
            lines: vec![Line::default(); sets * config.ways],
            clock: 0,
            stats: CacheStats::default(),
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: sets as u64 - 1,
            set_bits: sets.trailing_zeros(),
            pending_writeback: None,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Demand statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the statistics (contents are kept — useful for warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn locate(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr >> self.line_shift;
        (
            (line_addr & self.set_mask) as usize,
            line_addr >> self.set_bits,
        )
    }

    /// The line address of `addr` under this level's geometry; the key the
    /// hierarchy's batched fast path memoizes same-line runs on.
    #[inline]
    pub(crate) fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// A demand read. Returns `true` on hit; on miss the line is filled
    /// (evicting the LRU way).
    pub fn access(&mut self, addr: u64) -> bool {
        self.demand(addr, false)
    }

    /// A demand write (write-allocate, write-back: the line is marked
    /// dirty and costs a writeback when later evicted). Returns `true` on
    /// hit.
    pub fn access_write(&mut self, addr: u64) -> bool {
        self.demand(addr, true)
    }

    fn demand(&mut self, addr: u64, is_write: bool) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        self.stats.writes += is_write as u64;
        self.pending_writeback = None;
        let (set_idx, tag) = self.locate(addr);
        let base = set_idx * self.config.ways;
        let set = &mut self.lines[base..base + self.config.ways];
        // Single pass: find the hit and the LRU victim together. Strict
        // `<` keeps the first minimum, matching `min_by_key` tie-breaking
        // (invalid ways key as 0 and so win over any valid way).
        let mut victim = 0usize;
        let mut victim_key = u64::MAX;
        for (way, line) in set.iter_mut().enumerate() {
            if line.valid && line.tag == tag {
                line.last_use = self.clock;
                line.dirty |= is_write;
                if line.prefetched {
                    line.prefetched = false;
                    self.stats.prefetch_hits += 1;
                }
                return true;
            }
            let key = if line.valid { line.last_use + 1 } else { 0 };
            if key < victim_key {
                victim_key = key;
                victim = way;
            }
        }
        self.stats.misses += 1;
        self.stats.write_misses += is_write as u64;
        let evicted = Self::fill(&mut set[victim], tag, self.clock, false, is_write);
        self.note_victim(evicted, set_idx);
        false
    }

    /// Attempts a demand hit, committing the full hit bookkeeping (clock,
    /// access/write counters, LRU touch, dirty and prefetched bits) and
    /// returning the flat index of the hit line. On a miss **nothing
    /// changes** — the caller replays the op through the ordinary
    /// [`access`](Cache::access) path, which then observes exactly the
    /// state an unbatched run would have. The hierarchy's batched fast
    /// path uses this to skip the multi-level loop on L1 hits.
    #[inline]
    pub(crate) fn try_demand_hit(&mut self, addr: u64, is_write: bool) -> Option<usize> {
        let line_addr = addr >> self.line_shift;
        let set_idx = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_bits;
        let base = set_idx * self.config.ways;
        let clock = self.clock + 1;
        let mut hit = None;
        for idx in base..base + self.config.ways {
            let line = &mut self.lines[idx];
            if line.valid && line.tag == tag {
                line.last_use = clock;
                line.dirty |= is_write;
                let was_prefetched = line.prefetched;
                line.prefetched = false;
                hit = Some((idx, was_prefetched));
                break;
            }
        }
        let (idx, was_prefetched) = hit?;
        self.clock = clock;
        self.stats.accesses += 1;
        self.stats.writes += is_write as u64;
        self.stats.prefetch_hits += was_prefetched as u64;
        Some(idx)
    }

    /// Re-touches a line whose flat index came from a prior
    /// [`try_demand_hit`](Cache::try_demand_hit) with no intervening fill
    /// in this cache: the way scan is skipped entirely. The caller owns
    /// the validity argument (in the hierarchy's batched loop the memo is
    /// dropped on any L1 miss, and nothing else fills L1).
    #[inline]
    pub(crate) fn touch_resident(&mut self, idx: usize, is_write: bool) {
        self.clock += 1;
        self.stats.accesses += 1;
        self.stats.writes += is_write as u64;
        let clock = self.clock;
        let line = &mut self.lines[idx];
        line.last_use = clock;
        line.dirty |= is_write;
    }

    /// Commits a whole run of `count` consecutive hits (of which `writes`
    /// are stores) on one resident line in a single step. State-identical
    /// to `count` [`touch_resident`](Cache::touch_resident) calls: the
    /// clock and counters advance by the run totals and the line ends at
    /// the run's final `last_use`, dirty if any op in the run wrote.
    #[inline]
    pub(crate) fn touch_resident_run(&mut self, idx: usize, count: u64, writes: u64) {
        self.clock += count;
        self.stats.accesses += count;
        self.stats.writes += writes;
        let clock = self.clock;
        let line = &mut self.lines[idx];
        line.last_use = clock;
        line.dirty |= writes > 0;
    }

    /// A prefetch fill: inserts the line without counting a demand access.
    /// Returns `true` when the line was already present.
    pub fn prefetch(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.pending_writeback = None;
        let (set_idx, tag) = self.locate(addr);
        let base = set_idx * self.config.ways;
        let set = &mut self.lines[base..base + self.config.ways];
        let mut victim = 0usize;
        let mut victim_key = u64::MAX;
        for (way, line) in set.iter().enumerate() {
            if line.valid && line.tag == tag {
                return true;
            }
            let key = if line.valid { line.last_use + 1 } else { 0 };
            if key < victim_key {
                victim_key = key;
                victim = way;
            }
        }
        let evicted = Self::fill(&mut set[victim], tag, self.clock, true, false);
        self.note_victim(evicted, set_idx);
        false
    }

    /// Absorbs a write-back arriving from the level above: when the line is
    /// resident it is marked dirty in place (no demand access is counted)
    /// and `true` is returned; when it is absent the write-back must travel
    /// further down and `false` is returned.
    pub fn absorb_writeback(&mut self, addr: u64) -> bool {
        let (set_idx, tag) = self.locate(addr);
        let base = set_idx * self.config.ways;
        for line in self.lines[base..base + self.config.ways].iter_mut() {
            if line.valid && line.tag == tag {
                line.dirty = true;
                return true;
            }
        }
        false
    }

    /// The line address of the dirty victim evicted by the most recent
    /// `access`/`access_write`/`prefetch` call, if any. Consuming it clears
    /// the slot; the hierarchy uses this to forward the write-back to the
    /// next level down.
    pub fn take_writeback(&mut self) -> Option<u64> {
        self.pending_writeback.take()
    }

    /// Returns `true` when the line containing `addr` is resident.
    pub fn contains(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.locate(addr);
        let base = set_idx * self.config.ways;
        self.lines[base..base + self.config.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    fn note_victim(&mut self, victim_tag: Option<u64>, set_idx: usize) {
        if let Some(tag) = victim_tag {
            self.stats.writebacks += 1;
            let line_addr = (tag << self.set_bits) | set_idx as u64;
            self.pending_writeback = Some(line_addr << self.line_shift);
        }
    }

    /// Replaces the chosen victim line, returning its tag when it was
    /// valid and dirty (a write-back).
    fn fill(victim: &mut Line, tag: u64, clock: u64, prefetched: bool, dirty: bool) -> Option<u64> {
        let wrote_back = (victim.valid && victim.dirty).then_some(victim.tag);
        *victim = Line {
            tag,
            valid: true,
            last_use: clock,
            prefetched,
            dirty,
        };
        wrote_back
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64 B = 256 B.
        Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x40));
        assert!(c.access(0x40));
        assert!(c.access(0x7f)); // same 64-byte line
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn set_mapping_separates_lines() {
        let mut c = tiny();
        // 0x00 → set 0; 0x40 → set 1 for 64 B lines and 2 sets.
        assert!(!c.access(0x00));
        assert!(!c.access(0x40));
        assert!(c.access(0x00));
        assert!(c.access(0x40));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // All map to set 0 (stride = line * sets = 128).
        c.access(0x000);
        c.access(0x080);
        c.access(0x000); // touch A again; B is now LRU
        c.access(0x100); // evicts B
        assert!(c.access(0x000), "A must still be resident");
        assert!(!c.access(0x080), "B must have been evicted");
    }

    #[test]
    fn capacity_misses_on_large_working_set() {
        let mut c = Cache::new(CacheConfig::l1d_default());
        let lines = 4096u64; // 256 KiB of distinct lines through a 32 KiB L1
        for rep in 0..4 {
            for i in 0..lines {
                c.access(i * 64);
            }
            if rep == 0 {
                c.reset_stats();
            }
        }
        // Working set 8x the cache: essentially everything misses.
        assert!(c.stats().miss_ratio() > 0.95);
    }

    #[test]
    fn small_working_set_hits_after_warmup() {
        let mut c = Cache::new(CacheConfig::l1d_default());
        let lines = 128u64; // 8 KiB, fits easily
        for i in 0..lines {
            c.access(i * 64);
        }
        c.reset_stats();
        for _ in 0..10 {
            for i in 0..lines {
                c.access(i * 64);
            }
        }
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn prefetch_fills_avoid_demand_miss() {
        let mut c = tiny();
        assert!(!c.prefetch(0x40));
        assert!(c.access(0x40));
        assert_eq!(c.stats().misses, 0);
        assert_eq!(c.stats().prefetch_hits, 1);
        // Second touch is a regular hit, not another prefetch hit.
        assert!(c.access(0x40));
        assert_eq!(c.stats().prefetch_hits, 1);
    }

    #[test]
    fn prefetch_existing_line_reports_present() {
        let mut c = tiny();
        c.access(0x40);
        assert!(c.prefetch(0x40));
    }

    #[test]
    fn default_configs_are_consistent() {
        for config in [
            CacheConfig::l1d_default(),
            CacheConfig::l2_default(),
            CacheConfig::llc_default(),
        ] {
            let c = Cache::new(config);
            assert_eq!(c.config(), config);
            assert!(config.sets().is_power_of_two());
        }
        assert_eq!(CacheConfig::llc_default().size_bytes, 4 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 300,
            ways: 2,
            line_bytes: 50,
        });
    }

    #[test]
    fn writebacks_count_dirty_evictions() {
        let mut c = tiny();
        // Dirty two lines in set 0 (stride 128 maps to the same set).
        c.access_write(0x000);
        c.access_write(0x080);
        assert_eq!(c.stats().writebacks, 0);
        // Two more fills to the same set evict both dirty lines.
        c.access(0x100);
        c.access(0x180);
        assert_eq!(c.stats().writebacks, 2);
        // Clean evictions cost nothing.
        c.access(0x200);
        assert_eq!(c.stats().writebacks, 2);
    }

    #[test]
    fn reads_never_write_back() {
        let mut c = Cache::new(CacheConfig::l1d_default());
        for i in 0..10_000u64 {
            c.access(i * 64);
        }
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn write_stats_are_split_from_reads() {
        let mut c = tiny();
        c.access(0x000); // read miss
        c.access_write(0x000); // write hit
        c.access_write(0x400); // write miss (set 0, new line)
        let s = c.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads(), 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.write_misses, 1);
        assert_eq!(s.read_misses(), 1);
    }

    #[test]
    fn take_writeback_reconstructs_victim_address() {
        let mut c = tiny();
        // Dirty line at 0x080 (set 0), then fill set 0 twice more so the
        // LRU dirty victim is evicted.
        c.access_write(0x080);
        c.access(0x000);
        assert_eq!(c.take_writeback(), None, "clean fill evicts nothing");
        c.access(0x100); // evicts 0x080 (LRU, dirty)
        assert_eq!(c.take_writeback(), Some(0x080));
        assert_eq!(c.take_writeback(), None, "consumed");
    }

    #[test]
    fn absorb_writeback_marks_resident_line_dirty() {
        let mut c = tiny();
        c.access(0x040); // clean resident line
        assert!(c.absorb_writeback(0x040));
        assert!(!c.absorb_writeback(0x200), "absent line is not absorbed");
        // The absorbed line is now dirty: evicting it costs a writeback.
        c.access(0x0c0);
        c.access(0x140); // set 1 full; next fill evicts
        c.access(0x1c0);
        assert!(c.stats().writebacks >= 1);
        // Absorbing is not a demand access.
        assert_eq!(c.stats().accesses, 4);
    }

    #[test]
    fn stats_ratios() {
        let mut c = tiny();
        c.access(0x0);
        c.access(0x0);
        let s = c.stats();
        assert_eq!(s.hits(), 1);
        assert_eq!(s.miss_ratio(), 0.5);
        assert_eq!(s.mpka(), 500.0);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}

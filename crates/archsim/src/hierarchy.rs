//! The full memory hierarchy: L1D → L2 → LLC with an optional prefetcher.

use crate::{Cache, CacheConfig, CacheStats, PrefetchStats, VldpPrefetcher};

/// Summary of a traced run through the hierarchy.
///
/// Derives `PartialEq`/`Eq` so equivalence suites can assert that the
/// batched/buffered transport paths reproduce the per-op path's report
/// field-for-field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyReport {
    /// Stats per level, L1 first.
    pub levels: Vec<CacheStats>,
    /// Prefetcher stats, when one is attached.
    pub prefetch: Option<PrefetchStats>,
    /// Total demand accesses issued to the hierarchy.
    pub accesses: u64,
    /// Demand loads issued to the hierarchy.
    pub reads: u64,
    /// Demand stores issued to the hierarchy.
    pub writes: u64,
    /// Accesses that missed every level (went to memory).
    pub memory_accesses: u64,
    /// Dirty evictions that fell out of the last level (DRAM writes).
    pub memory_writebacks: u64,
}

impl HierarchyReport {
    /// Fraction of accesses that reached main memory.
    pub fn memory_access_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.memory_accesses as f64 / self.accesses as f64
        }
    }

    /// Fraction of demand accesses that were stores.
    pub fn write_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.writes as f64 / self.accesses as f64
        }
    }
}

/// A three-level inclusive cache hierarchy driven by address traces.
///
/// Mirrors the processor of the paper's §IV methodology: Intel Core
/// i3-8109U with a 4 MB on-chip cache (here 32 KiB L1D + 256 KiB L2 +
/// 4 MiB LLC, 64-byte lines, LRU). A [`VldpPrefetcher`] can be attached to
/// the L2, matching where the paper's VLDP experiment operates.
///
/// # Example
///
/// ```
/// use rtr_archsim::MemorySim;
///
/// let mut sim = MemorySim::i3_8109u();
/// for i in 0..1000u64 {
///     sim.read(i * 64);
/// }
/// let report = sim.report();
/// assert_eq!(report.accesses, 1000);
/// ```
#[derive(Debug, Clone)]
pub struct MemorySim {
    levels: Vec<Cache>,
    prefetcher: Option<VldpPrefetcher>,
    accesses: u64,
    writes: u64,
    memory_accesses: u64,
    memory_writebacks: u64,
    /// Reused buffer for prefetch predictions; keeps the per-access
    /// prefetch tail allocation-free.
    prediction_scratch: Vec<u64>,
}

impl MemorySim {
    /// Builds a hierarchy from explicit per-level configs (L1 first).
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    pub fn new(configs: &[CacheConfig]) -> Self {
        assert!(!configs.is_empty(), "need at least one cache level");
        MemorySim {
            levels: configs.iter().map(|&c| Cache::new(c)).collect(),
            prefetcher: None,
            accesses: 0,
            writes: 0,
            memory_accesses: 0,
            memory_writebacks: 0,
            prediction_scratch: Vec::new(),
        }
    }

    /// The paper's modeled processor: i3-8109U-like L1D/L2/LLC.
    pub fn i3_8109u() -> Self {
        MemorySim::new(&[
            CacheConfig::l1d_default(),
            CacheConfig::l2_default(),
            CacheConfig::llc_default(),
        ])
    }

    /// Attaches a VLDP prefetcher (fills L2 and LLC).
    pub fn with_vldp(mut self, degree: usize) -> Self {
        self.prefetcher = Some(VldpPrefetcher::new(degree));
        self
    }

    /// Returns `true` when a prefetcher is attached.
    pub fn has_prefetcher(&self) -> bool {
        self.prefetcher.is_some()
    }

    /// Number of cache levels.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Stats for level `i` (0 = L1).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn level_stats(&self, i: usize) -> CacheStats {
        self.levels[i].stats()
    }

    /// A demand read of `addr`.
    pub fn read(&mut self, addr: u64) {
        self.access(addr);
    }

    /// A demand write of `addr` (write-allocate, write-back: the L1 line
    /// is marked dirty and its eventual eviction counts a writeback).
    pub fn write(&mut self, addr: u64) {
        self.access_inner(addr, true);
    }

    fn access(&mut self, addr: u64) {
        self.access_inner(addr, false);
    }

    fn access_inner(&mut self, addr: u64, is_write: bool) {
        self.accesses += 1;
        self.writes += is_write as u64;
        self.access_levels(addr, is_write);
    }

    /// The per-level walk plus the prefetch tail; hierarchy-level access
    /// counters are the caller's job (so the batched fast path can count
    /// once and only fall in here on an L1 miss).
    fn access_levels(&mut self, addr: u64, is_write: bool) {
        let mut hit = false;
        for i in 0..self.levels.len() {
            let level_hit = if is_write && i == 0 {
                self.levels[i].access_write(addr)
            } else {
                self.levels[i].access(addr)
            };
            // A miss fills this level; its dirty victim (if any) becomes a
            // write-back that the next level down must absorb.
            if let Some(victim) = self.levels[i].take_writeback() {
                self.writeback_into(i + 1, victim);
            }
            if level_hit {
                hit = true;
                break;
            }
        }
        if !hit {
            self.memory_accesses += 1;
        }
        self.prefetch_tail(addr);
    }

    /// Lets the prefetcher observe one demand access and issues its
    /// predictions into L2 and below. Runs on *every* demand access — L1
    /// hits included — so the delta histories a batched run trains are
    /// identical to an unbatched run's.
    fn prefetch_tail(&mut self, addr: u64) {
        if self.prefetcher.is_none() {
            return;
        }
        // Take the scratch buffer out of `self` so the prefetcher borrow
        // ends before the level walk below needs `&mut self`.
        let mut predictions = std::mem::take(&mut self.prediction_scratch);
        if let Some(pf) = &mut self.prefetcher {
            pf.observe_into(addr, &mut predictions);
        }
        for &p in &predictions {
            let mut redundant = true;
            for j in 1..self.levels.len() {
                redundant &= self.levels[j].prefetch(p);
                if let Some(victim) = self.levels[j].take_writeback() {
                    self.writeback_into(j + 1, victim);
                }
            }
            if redundant {
                if let Some(pf) = &mut self.prefetcher {
                    pf.note_redundant();
                }
            }
        }
        self.prediction_scratch = predictions;
    }

    /// Forwards a dirty-eviction write-back starting at `level`, walking
    /// down until a level absorbs it or it falls out to memory.
    fn writeback_into(&mut self, mut level: usize, addr: u64) {
        while level < self.levels.len() {
            if self.levels[level].absorb_writeback(addr) {
                return;
            }
            level += 1;
        }
        self.memory_writebacks += 1;
    }

    /// Resets statistics on every level (contents stay warm).
    pub fn reset_stats(&mut self) {
        for level in &mut self.levels {
            level.reset_stats();
        }
        self.accesses = 0;
        self.writes = 0;
        self.memory_accesses = 0;
        self.memory_writebacks = 0;
    }

    /// Produces the run summary.
    pub fn report(&self) -> HierarchyReport {
        HierarchyReport {
            levels: self.levels.iter().map(|l| l.stats()).collect(),
            prefetch: self.prefetcher.as_ref().map(|p| p.stats()),
            accesses: self.accesses,
            reads: self.accesses - self.writes,
            writes: self.writes,
            memory_accesses: self.memory_accesses,
            memory_writebacks: self.memory_writebacks,
        }
    }
}

impl rtr_trace::MemTrace for MemorySim {
    #[inline]
    fn read(&mut self, addr: u64) {
        MemorySim::read(self, addr);
    }

    #[inline]
    fn write(&mut self, addr: u64) {
        MemorySim::write(self, addr);
    }

    /// The monomorphic fast path. Observable state after a batch is
    /// identical to replaying each op through `read`/`write` (the
    /// equivalence proptests pin this); only the work per op changes:
    ///
    /// - **L1-hit early-out**: `Cache::try_demand_hit` commits the hit
    ///   bookkeeping and skips the per-level loop and writeback plumbing.
    ///   On a miss it touches nothing, so the ordinary path replays the op
    ///   against unmodified state.
    /// - **Same-line memo**: consecutive ops to one L1 line skip even the
    ///   way scan (`Cache::touch_resident`). Sound because L1 contents
    ///   only change on an L1 demand miss (prefetches fill L2 and below;
    ///   write-backs from above dirty resident lines in place), and the
    ///   memo is dropped on every miss.
    fn process_batch(&mut self, ops: &[rtr_trace::TraceOp]) {
        let mut memo: Option<(u64, usize)> = None;
        // With no prefetcher attached, a run of consecutive ops on the
        // memoized line commits in one step (`touch_resident_run` is
        // state-identical to the per-op replay). With VLDP attached the
        // memo still skips the way scan but every op goes through
        // `prefetch_tail` individually: the prefetcher observes each
        // demand access, and repeated same-line observations are not
        // idempotent (they re-walk the prediction tables).
        let collapse_runs = self.prefetcher.is_none();
        let mut i = 0;
        while i < ops.len() {
            let op = ops[i];
            let line_addr = self.levels[0].line_addr(op.addr);
            if let Some((memo_line, memo_idx)) = memo {
                if memo_line == line_addr {
                    if collapse_runs {
                        let mut writes = op.is_write as u64;
                        let mut j = i + 1;
                        while j < ops.len() && self.levels[0].line_addr(ops[j].addr) == memo_line {
                            writes += ops[j].is_write as u64;
                            j += 1;
                        }
                        let count = (j - i) as u64;
                        self.accesses += count;
                        self.writes += writes;
                        self.levels[0].touch_resident_run(memo_idx, count, writes);
                        i = j;
                    } else {
                        self.accesses += 1;
                        self.writes += op.is_write as u64;
                        self.levels[0].touch_resident(memo_idx, op.is_write);
                        self.prefetch_tail(op.addr);
                        i += 1;
                    }
                    continue;
                }
            }
            self.accesses += 1;
            self.writes += op.is_write as u64;
            if let Some(idx) = self.levels[0].try_demand_hit(op.addr, op.is_write) {
                memo = Some((line_addr, idx));
                self.prefetch_tail(op.addr);
            } else {
                memo = None;
                self.access_levels(op.addr, op.is_write);
            }
            i += 1;
        }
    }
}

/// Collector-side consumption for the ring telemetry transport: a
/// drained `TraceOp` batch is replayed through the monomorphic
/// [`process_batch`](rtr_trace::MemTrace::process_batch) fast path.
///
/// `process_batch` is batch-size invariant (pinned by the equivalence
/// proptests), so the racy batch boundaries produced by the collector's
/// drain loop cannot change the final [`HierarchyReport`] — which is
/// what makes the ring-transported cache characterization byte-identical
/// to the inline path.
impl rtr_trace::RingConsumer<rtr_trace::TraceOp> for MemorySim {
    fn consume_batch(&mut self, batch: &[rtr_trace::TraceOp]) {
        rtr_trace::MemTrace::process_batch(self, batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misses_propagate_down() {
        let mut sim = MemorySim::i3_8109u();
        sim.read(0x1000);
        let r = sim.report();
        assert_eq!(r.levels[0].misses, 1);
        assert_eq!(r.levels[1].misses, 1);
        assert_eq!(r.levels[2].misses, 1);
        assert_eq!(r.memory_accesses, 1);
        // Second read hits L1; lower levels see nothing.
        sim.read(0x1000);
        let r = sim.report();
        assert_eq!(r.levels[0].accesses, 2);
        assert_eq!(r.levels[1].accesses, 1);
    }

    #[test]
    fn l2_catches_l1_capacity_misses() {
        let mut sim = MemorySim::i3_8109u();
        // 64 KiB working set: 2x L1, fits L2 easily.
        let lines = 1024u64;
        for _ in 0..3 {
            for i in 0..lines {
                sim.read(i * 64);
            }
        }
        sim.reset_stats();
        for i in 0..lines {
            sim.read(i * 64);
        }
        let r = sim.report();
        assert!(r.levels[0].miss_ratio() > 0.9, "L1 should thrash");
        assert_eq!(r.levels[1].misses, 0, "L2 should absorb everything");
        assert_eq!(r.memory_accesses, 0);
    }

    #[test]
    fn vldp_reduces_l2_misses_on_streams() {
        let run = |with_pf: bool| {
            let mut sim = MemorySim::i3_8109u();
            if with_pf {
                sim = sim.with_vldp(2);
            }
            // Long streaming read: every line is new.
            for i in 0..100_000u64 {
                sim.read(i * 64);
            }
            sim.report()
        };
        let base = run(false);
        let pf = run(true);
        assert!(
            (pf.levels[1].misses as f64) < base.levels[1].misses as f64 * 0.5,
            "prefetcher should at least halve L2 misses on a stream: {} vs {}",
            pf.levels[1].misses,
            base.levels[1].misses
        );
        assert!(pf.prefetch.unwrap().issued > 0);
    }

    #[test]
    fn random_accesses_defeat_prefetcher() {
        let mut sim = MemorySim::i3_8109u().with_vldp(2);
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            sim.read(x % (256 * 1024 * 1024));
        }
        let r = sim.report();
        // Random walk over 256 MB: high L1 miss ratio survives prefetching.
        assert!(r.levels[0].miss_ratio() > 0.8);
    }

    #[test]
    fn report_ratios() {
        let mut sim = MemorySim::new(&[CacheConfig::l1d_default()]);
        sim.read(0);
        sim.read(0);
        let r = sim.report();
        assert_eq!(r.accesses, 2);
        assert_eq!(r.memory_access_ratio(), 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one cache level")]
    fn empty_hierarchy_panics() {
        let _ = MemorySim::new(&[]);
    }

    #[test]
    fn write_allocates_marks_dirty_and_splits_stats() {
        let mut sim = MemorySim::i3_8109u();
        sim.write(0x40); // write miss: allocate in every level, dirty in L1
        assert!(sim.levels[0].contains(0x40));
        sim.read(0x40); // hit
        let r = sim.report();
        assert_eq!(r.levels[0].misses, 1);
        assert_eq!((r.reads, r.writes), (1, 1));
        assert_eq!(r.write_ratio(), 0.5);
        assert_eq!(r.levels[0].writes, 1);
        assert_eq!(r.levels[0].write_misses, 1);
        // Only L1 sees the store; lower levels allocate via plain fills.
        assert_eq!(r.levels[1].writes, 0);
    }

    /// Two tiny levels so eviction scripts are easy to reason about:
    /// L1 = 2 sets x 2 ways, L2 = 4 sets x 4 ways (64 B lines).
    fn tiny_two_level() -> MemorySim {
        MemorySim::new(&[
            CacheConfig {
                size_bytes: 256,
                ways: 2,
                line_bytes: 64,
            },
            CacheConfig {
                size_bytes: 1024,
                ways: 4,
                line_bytes: 64,
            },
        ])
    }

    #[test]
    fn dirty_eviction_script_counts_writebacks_per_level() {
        let mut sim = tiny_two_level();
        // Dirty one L1 line, then stream three more lines through its set
        // (stride 128 maps to L1 set 0) to force the dirty eviction.
        sim.write(0x000);
        sim.read(0x080);
        sim.read(0x100); // evicts dirty 0x000 from L1
        sim.read(0x180);
        let r = sim.report();
        assert_eq!(r.levels[0].writebacks, 1, "exactly one dirty L1 victim");
        // L2 still holds the line (inclusive fill on the original miss), so
        // it absorbs the write-back without reaching memory.
        assert_eq!(r.levels[1].writebacks, 0);
        assert_eq!(r.memory_writebacks, 0);
        assert!(sim.levels[1].contains(0x000));
    }

    #[test]
    fn writeback_propagates_through_inclusive_hierarchy_to_memory() {
        let mut sim = tiny_two_level();
        sim.write(0x000);
        // Thrash both levels: 32 distinct lines in L1 set 0 / L2 set 0
        // (stride 256 maps to set 0 of both levels).
        for i in 1..=32u64 {
            sim.read(i * 256);
        }
        let r = sim.report();
        // The dirty line was first evicted from L1 (absorbed by L2 while
        // still resident), then from L2, whose dirty eviction reaches DRAM.
        assert!(r.levels[0].writebacks >= 1);
        assert_eq!(r.levels[1].writebacks, 1);
        assert_eq!(r.memory_writebacks, 1);
        assert!(!sim.levels[1].contains(0x000));
    }

    #[test]
    fn clean_workload_never_writes_back_to_memory() {
        let mut sim = tiny_two_level();
        for i in 0..1000u64 {
            sim.read(i * 64);
        }
        let r = sim.report();
        assert_eq!(r.writes, 0);
        assert_eq!(r.memory_writebacks, 0);
        assert!(r.levels.iter().all(|l| l.writebacks == 0));
    }

    #[test]
    fn memory_sim_implements_mem_trace() {
        use rtr_trace::MemTrace;

        fn emit<T: MemTrace + ?Sized>(trace: &mut T) {
            trace.read(0x40);
            trace.write(0x40);
        }

        let mut sim = MemorySim::i3_8109u();
        assert!(MemTrace::enabled(&sim));
        emit(&mut sim);
        let dynamic: &mut dyn MemTrace = &mut sim;
        emit(dynamic);
        let r = sim.report();
        assert_eq!(r.accesses, 4);
        assert_eq!((r.reads, r.writes), (2, 2));
    }
}

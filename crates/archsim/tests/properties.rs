//! Property-based tests for the cache-hierarchy simulator.

use std::collections::VecDeque;

use proptest::prelude::*;
use rtr_archsim::{Cache, CacheConfig, MemorySim, VldpPrefetcher};
use rtr_trace::{BufferedTrace, MemTrace, TraceOp};

/// Builds the hierarchy variants the transport-equivalence tests sweep:
/// the paper's i3-8109U shape (with and without VLDP) plus a tiny
/// two-level shape whose sets thrash constantly, maximizing eviction and
/// write-back traffic.
fn hierarchy_variants() -> Vec<MemorySim> {
    let tiny = &[
        CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
        },
        CacheConfig {
            size_bytes: 1024,
            ways: 4,
            line_bytes: 64,
        },
    ];
    vec![
        MemorySim::i3_8109u(),
        MemorySim::i3_8109u().with_vldp(2),
        MemorySim::new(tiny),
        MemorySim::new(tiny).with_vldp(2),
    ]
}

/// Replays `ops` through the legacy per-op dyn path.
fn per_op_reference(mut sim: MemorySim, ops: &[TraceOp]) -> rtr_archsim::HierarchyReport {
    let sink: &mut dyn MemTrace = &mut sim;
    for op in ops {
        if op.is_write {
            sink.write(op.addr);
        } else {
            sink.read(op.addr);
        }
    }
    sim.report()
}

/// A reference fully-software LRU model for one cache set-associative
/// geometry: per set, a queue of tags in recency order.
struct ReferenceLru {
    sets: Vec<VecDeque<u64>>,
    ways: usize,
    line_shift: u32,
    set_mask: u64,
}

impl ReferenceLru {
    fn new(config: CacheConfig) -> Self {
        ReferenceLru {
            sets: vec![VecDeque::new(); config.sets()],
            ways: config.ways,
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: config.sets() as u64 - 1,
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let q = &mut self.sets[set];
        if let Some(pos) = q.iter().position(|&t| t == tag) {
            q.remove(pos);
            q.push_back(tag);
            true
        } else {
            if q.len() == self.ways {
                q.pop_front();
            }
            q.push_back(tag);
            false
        }
    }
}

proptest! {
    #[test]
    fn cache_matches_reference_lru(addrs in prop::collection::vec(0u64..16_384, 1..400)) {
        let config = CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
        };
        let mut cache = Cache::new(config);
        let mut reference = ReferenceLru::new(config);
        for &addr in &addrs {
            let got = cache.access(addr);
            let want = reference.access(addr);
            prop_assert_eq!(got, want, "divergence at address {:#x}", addr);
        }
    }

    #[test]
    fn stats_are_consistent(addrs in prop::collection::vec(0u64..65_536, 1..300)) {
        let mut cache = Cache::new(CacheConfig::l1d_default());
        let mut hits = 0u64;
        for &addr in &addrs {
            if cache.access(addr) {
                hits += 1;
            }
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.accesses, addrs.len() as u64);
        prop_assert_eq!(stats.hits(), hits);
        prop_assert!(stats.miss_ratio() >= 0.0 && stats.miss_ratio() <= 1.0);
    }

    #[test]
    fn immediate_rereference_always_hits(addrs in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut cache = Cache::new(CacheConfig::l2_default());
        for &addr in &addrs {
            cache.access(addr);
            prop_assert!(cache.access(addr), "re-reference missed at {:#x}", addr);
            prop_assert!(cache.contains(addr));
        }
    }

    #[test]
    fn hierarchy_miss_counts_are_monotone(addrs in prop::collection::vec(0u64..(1 << 24), 1..300)) {
        // A lower level can never see more accesses than the level above
        // misses, and memory accesses equal the last level's misses.
        let mut sim = MemorySim::i3_8109u();
        for &addr in &addrs {
            sim.read(addr);
        }
        let r = sim.report();
        prop_assert_eq!(r.accesses, addrs.len() as u64);
        prop_assert_eq!(r.levels[0].accesses, r.accesses);
        prop_assert_eq!(r.levels[1].accesses, r.levels[0].misses);
        prop_assert_eq!(r.levels[2].accesses, r.levels[1].misses);
        prop_assert_eq!(r.memory_accesses, r.levels[2].misses);
    }

    #[test]
    fn prefetcher_never_increases_demand_misses(stride in 1u64..8, len in 100usize..2000) {
        let run = |with_pf: bool| {
            let mut sim = MemorySim::i3_8109u();
            if with_pf {
                sim = sim.with_vldp(2);
            }
            for i in 0..len as u64 {
                sim.read(i * stride * 64);
            }
            sim.report()
        };
        let base = run(false);
        let pf = run(true);
        // L1 is untouched by the L2 prefetcher; L2 misses must not grow.
        prop_assert_eq!(base.levels[0].misses, pf.levels[0].misses);
        prop_assert!(pf.levels[1].misses <= base.levels[1].misses);
    }

    #[test]
    fn vldp_predictions_stay_in_page(addrs in prop::collection::vec(0u64..(1 << 20), 1..300)) {
        let mut pf = VldpPrefetcher::new(4);
        for &addr in &addrs {
            for p in pf.observe(addr) {
                prop_assert_eq!(p / 4096, addr / 4096, "prediction crossed a page");
            }
        }
    }

    #[test]
    fn batched_and_buffered_reports_are_byte_identical(
        addrs in prop::collection::vec(0u64..262_144, 1..500)
    ) {
        // Derive the op kind from the address bits so the mix is random
        // but reproducible from one generated vector.
        let ops: Vec<TraceOp> = addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| TraceOp { addr: a, is_write: (a ^ i as u64) & 1 == 1 })
            .collect();
        for reference in hierarchy_variants() {
            let want = per_op_reference(reference.clone(), &ops);
            // One-shot batch through the monomorphic fast path.
            let mut batched = reference.clone();
            batched.process_batch(&ops);
            prop_assert_eq!(&batched.report(), &want);
            // Buffered transport across flush-boundary-hostile capacities.
            for cap in [1usize, 7, 4096] {
                let mut buffered = BufferedTrace::with_capacity(reference.clone(), cap);
                for op in &ops {
                    if op.is_write {
                        buffered.write(op.addr);
                    } else {
                        buffered.read(op.addr);
                    }
                }
                prop_assert_eq!(&buffered.into_inner().report(), &want, "capacity {}", cap);
            }
        }
    }

    #[test]
    fn same_line_runs_hit_the_memo_and_stay_identical(
        lines in prop::collection::vec(0u64..2048, 1..200)
    ) {
        // Expand each generated line into a short same-line run (the shape
        // the batched path memoizes) with a mixed read/write pattern.
        let mut ops = Vec::new();
        for (i, &line) in lines.iter().enumerate() {
            for rep in 0..=(line & 3) {
                ops.push(TraceOp {
                    addr: line * 64 + rep * 8,
                    is_write: (line + rep + i as u64) & 1 == 1,
                });
            }
        }
        for reference in hierarchy_variants() {
            let want = per_op_reference(reference.clone(), &ops);
            let mut batched = reference.clone();
            batched.process_batch(&ops);
            prop_assert_eq!(&batched.report(), &want);
        }
    }
}

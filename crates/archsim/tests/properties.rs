//! Property-based tests for the cache-hierarchy simulator.

use std::collections::VecDeque;

use proptest::prelude::*;
use rtr_archsim::{Cache, CacheConfig, MemorySim, VldpPrefetcher};

/// A reference fully-software LRU model for one cache set-associative
/// geometry: per set, a queue of tags in recency order.
struct ReferenceLru {
    sets: Vec<VecDeque<u64>>,
    ways: usize,
    line_shift: u32,
    set_mask: u64,
}

impl ReferenceLru {
    fn new(config: CacheConfig) -> Self {
        ReferenceLru {
            sets: vec![VecDeque::new(); config.sets()],
            ways: config.ways,
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: config.sets() as u64 - 1,
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let q = &mut self.sets[set];
        if let Some(pos) = q.iter().position(|&t| t == tag) {
            q.remove(pos);
            q.push_back(tag);
            true
        } else {
            if q.len() == self.ways {
                q.pop_front();
            }
            q.push_back(tag);
            false
        }
    }
}

proptest! {
    #[test]
    fn cache_matches_reference_lru(addrs in prop::collection::vec(0u64..16_384, 1..400)) {
        let config = CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
        };
        let mut cache = Cache::new(config);
        let mut reference = ReferenceLru::new(config);
        for &addr in &addrs {
            let got = cache.access(addr);
            let want = reference.access(addr);
            prop_assert_eq!(got, want, "divergence at address {:#x}", addr);
        }
    }

    #[test]
    fn stats_are_consistent(addrs in prop::collection::vec(0u64..65_536, 1..300)) {
        let mut cache = Cache::new(CacheConfig::l1d_default());
        let mut hits = 0u64;
        for &addr in &addrs {
            if cache.access(addr) {
                hits += 1;
            }
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.accesses, addrs.len() as u64);
        prop_assert_eq!(stats.hits(), hits);
        prop_assert!(stats.miss_ratio() >= 0.0 && stats.miss_ratio() <= 1.0);
    }

    #[test]
    fn immediate_rereference_always_hits(addrs in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut cache = Cache::new(CacheConfig::l2_default());
        for &addr in &addrs {
            cache.access(addr);
            prop_assert!(cache.access(addr), "re-reference missed at {:#x}", addr);
            prop_assert!(cache.contains(addr));
        }
    }

    #[test]
    fn hierarchy_miss_counts_are_monotone(addrs in prop::collection::vec(0u64..(1 << 24), 1..300)) {
        // A lower level can never see more accesses than the level above
        // misses, and memory accesses equal the last level's misses.
        let mut sim = MemorySim::i3_8109u();
        for &addr in &addrs {
            sim.read(addr);
        }
        let r = sim.report();
        prop_assert_eq!(r.accesses, addrs.len() as u64);
        prop_assert_eq!(r.levels[0].accesses, r.accesses);
        prop_assert_eq!(r.levels[1].accesses, r.levels[0].misses);
        prop_assert_eq!(r.levels[2].accesses, r.levels[1].misses);
        prop_assert_eq!(r.memory_accesses, r.levels[2].misses);
    }

    #[test]
    fn prefetcher_never_increases_demand_misses(stride in 1u64..8, len in 100usize..2000) {
        let run = |with_pf: bool| {
            let mut sim = MemorySim::i3_8109u();
            if with_pf {
                sim = sim.with_vldp(2);
            }
            for i in 0..len as u64 {
                sim.read(i * stride * 64);
            }
            sim.report()
        };
        let base = run(false);
        let pf = run(true);
        // L1 is untouched by the L2 prefetcher; L2 misses must not grow.
        prop_assert_eq!(base.levels[0].misses, pf.levels[0].misses);
        prop_assert!(pf.levels[1].misses <= base.levels[1].misses);
    }

    #[test]
    fn vldp_predictions_stay_in_page(addrs in prop::collection::vec(0u64..(1 << 20), 1..300)) {
        let mut pf = VldpPrefetcher::new(4);
        for &addr in &addrs {
            for p in pf.observe(addr) {
                prop_assert_eq!(p / 4096, addr / 4096, "prediction crossed a page");
            }
        }
    }
}

//! Time-series metric layer for the ring transport: fixed-capacity
//! series plus HDR-style fixed-bucket latency histograms.
//!
//! The producer side publishes [`MetricRecord`]s (a `u32` metric id and
//! a `u64` value, typically nanoseconds) through the SPSC ring under the
//! count-and-drop contract — a measurement stream tolerates loss, a hot
//! loop does not tolerate stalls. The collector side aggregates into a
//! [`MetricMap`]: per metric id, a circular [`TimeSeries`] of the most
//! recent raw values and a [`Histogram`] with bounded relative error for
//! p50/p99/p99.9 queries. Nothing here reads the wall clock: values are
//! timed by the producer, the collector only counts.
//!
//! The histogram follows the HDR scheme (exact unit buckets for small
//! values, then 32 logarithmic sub-buckets per power of two), which
//! keeps the footprint fixed at 1920 buckets for the full `u64` range
//! while bounding quantile error at one part in 32 (~3.1%).

use std::collections::BTreeMap;

use crate::ring::{ring, RingConsumer, RingItem, RingProducer, RingReader};

/// One telemetry sample: a metric id and a value (usually nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricRecord {
    /// Which metric this sample belongs to; ids are interned by the
    /// producer-side [`MetricPublisher`].
    pub id: u32,
    /// The sampled value.
    pub value: u64,
}

impl RingItem for MetricRecord {
    const WORDS: usize = 2;

    #[inline]
    fn encode(self, words: &mut [u64]) {
        words[0] = u64::from(self.id);
        words[1] = self.value;
    }

    #[inline]
    fn decode(words: &[u64]) -> Self {
        MetricRecord {
            id: words[0] as u32,
            value: words[1],
        }
    }
}

/// Exact unit buckets for values below this threshold.
const LINEAR_BUCKETS: u64 = 64;
/// Logarithmic sub-buckets per power of two above the linear range.
const SUB_BUCKETS: u64 = 32;
/// Total bucket count covering the full `u64` range:
/// 64 linear + 58 exponent ranges × 32 sub-buckets.
const BUCKETS: usize = (LINEAR_BUCKETS + 58 * SUB_BUCKETS) as usize;

/// Fixed-bucket latency histogram with ≤ 1/32 relative quantile error.
///
/// Values `< 64` land in exact unit buckets; a value with bit length
/// `b > 6` lands in one of 32 sub-buckets of its power-of-two range,
/// indexed by its top six bits. Recording is two shifts, a subtraction
/// and an increment — cheap enough for the collector to absorb millions
/// of samples — and the memory footprint is a fixed 15 KiB regardless
/// of how many samples arrive.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Box<[u64]>,
    total: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0u64; BUCKETS].into_boxed_slice(),
            total: 0,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value < LINEAR_BUCKETS {
            return value as usize;
        }
        // bit length is ≥ 7 here; `exp` is how far the top six bits sit
        // above the units position.
        let bitlen = 64 - value.leading_zeros() as u64;
        let exp = bitlen - 6;
        let sub = (value >> exp) - SUB_BUCKETS;
        (LINEAR_BUCKETS + (exp - 1) * SUB_BUCKETS + sub) as usize
    }

    /// Largest value that maps into bucket `idx` (inclusive upper edge).
    fn bucket_upper(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < LINEAR_BUCKETS {
            return idx;
        }
        let exp = (idx - LINEAR_BUCKETS) / SUB_BUCKETS + 1;
        let sub = (idx - LINEAR_BUCKETS) % SUB_BUCKETS;
        // The bucket holds values whose top six bits equal sub+32; its
        // upper edge is the next sub-bucket's floor minus one.
        ((sub + SUB_BUCKETS + 1) << exp).wrapping_sub(1)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.total += 1;
        self.max = self.max.max(value);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest sample recorded so far (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q ∈ [0, 1]`, as the upper edge of the bucket
    /// containing that rank (clamped to the observed maximum). Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

/// Fixed-capacity circular buffer of the most recent raw samples.
///
/// When full, a push overwrites the oldest sample; the histogram keeps
/// the full distribution, the series keeps a bounded tail of raw values
/// for inspection and report writing.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    buf: Vec<u64>,
    capacity: usize,
    head: usize,
}

impl TimeSeries {
    /// An empty series retaining at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TimeSeries capacity must be non-zero");
        TimeSeries {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
        }
    }

    /// Appends a sample, evicting the oldest when full.
    pub fn push(&mut self, value: u64) {
        if self.buf.len() < self.capacity {
            self.buf.push(value);
        } else {
            self.buf[self.head] = value;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Samples currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retained samples, oldest first.
    pub fn snapshot(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// Per-metric aggregate: bounded raw tail plus full-distribution
/// histogram.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Most recent raw samples, oldest first.
    pub series: TimeSeries,
    /// Full distribution for quantile queries.
    pub hist: Histogram,
}

/// Collector-side aggregation of [`MetricRecord`] streams: one
/// [`Metric`] per id, created on first sight.
///
/// Implements [`RingConsumer`], so a `Collector` can drain a metric ring
/// straight into it. Iteration order is by id (via `BTreeMap`), which
/// keeps report output deterministic.
#[derive(Debug, Clone)]
pub struct MetricMap {
    series_capacity: usize,
    metrics: BTreeMap<u32, Metric>,
}

impl MetricMap {
    /// Default per-metric raw-sample retention.
    pub const DEFAULT_SERIES_CAPACITY: usize = 1024;

    /// An empty map with the default series retention.
    pub fn new() -> Self {
        Self::with_series_capacity(Self::DEFAULT_SERIES_CAPACITY)
    }

    /// An empty map retaining `series_capacity` raw samples per metric.
    pub fn with_series_capacity(series_capacity: usize) -> Self {
        assert!(series_capacity > 0, "series capacity must be non-zero");
        MetricMap {
            series_capacity,
            metrics: BTreeMap::new(),
        }
    }

    /// Records one sample under `id`.
    pub fn record(&mut self, id: u32, value: u64) {
        let metric = self.metrics.entry(id).or_insert_with(|| Metric {
            series: TimeSeries::new(self.series_capacity),
            hist: Histogram::new(),
        });
        metric.series.push(value);
        metric.hist.record(value);
    }

    /// The aggregate for `id`, if any samples have arrived.
    pub fn get(&self, id: u32) -> Option<&Metric> {
        self.metrics.get(&id)
    }

    /// Number of distinct metric ids seen.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// `true` when no samples have arrived.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Metric ids seen so far, ascending.
    pub fn ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.metrics.keys().copied()
    }
}

impl Default for MetricMap {
    fn default() -> Self {
        Self::new()
    }
}

impl RingConsumer<MetricRecord> for MetricMap {
    fn consume_batch(&mut self, batch: &[MetricRecord]) {
        for record in batch {
            self.record(record.id, record.value);
        }
    }
}

/// Producer-side handle for publishing metrics: interns metric names to
/// ids and pushes records under the ring's count-and-drop contract.
///
/// Interning ([`metric_id`](MetricPublisher::metric_id)) allocates on
/// first sight of a name and is meant for setup or amortized first-use;
/// [`publish`](MetricPublisher::publish) is the hot-path entry point and
/// is allocation-free (pinned by `rtr-lint`'s `hot-alloc` rule).
#[derive(Debug)]
pub struct MetricPublisher {
    producer: RingProducer<MetricRecord>,
    names: Vec<String>,
}

impl MetricPublisher {
    /// Wraps a ring producer.
    pub fn new(producer: RingProducer<MetricRecord>) -> Self {
        MetricPublisher {
            producer,
            names: Vec::new(),
        }
    }

    /// Returns the id for `name`, interning it on first sight.
    pub fn metric_id(&mut self, name: &str) -> u32 {
        if let Some(idx) = self.names.iter().position(|n| n == name) {
            return idx as u32;
        }
        self.names.push(name.to_string());
        (self.names.len() - 1) as u32
    }

    /// Publishes one sample under the count-and-drop contract; `false`
    /// means the ring was full and the sample was dropped (and counted).
    #[inline]
    pub fn publish(&mut self, id: u32, value: u64) -> bool {
        self.producer.push(MetricRecord { id, value })
    }

    /// Samples dropped so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.producer.dropped()
    }

    /// Interned names, indexed by metric id.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Releases the handle, returning the interned name table so the
    /// caller can label ids in the collected [`MetricMap`].
    pub fn into_names(self) -> Vec<String> {
        self.names
    }
}

/// Builds a metric channel: a publisher for the hot thread and a reader
/// for the collector.
///
/// # Panics
///
/// Panics when `capacity` is not a power of two.
pub fn metric_channel(capacity: usize) -> (MetricPublisher, RingReader<MetricRecord>) {
    let (tx, rx) = ring::<MetricRecord>(capacity);
    (MetricPublisher::new(tx), rx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_record_encoding_round_trips() {
        for case in [
            MetricRecord { id: 0, value: 0 },
            MetricRecord {
                id: u32::MAX,
                value: u64::MAX,
            },
            MetricRecord { id: 7, value: 1234 },
        ] {
            let mut words = [0u64; MetricRecord::WORDS];
            case.encode(&mut words);
            assert_eq!(MetricRecord::decode(&words), case);
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.quantile(0.5), 31);
        assert_eq!(h.quantile(1.0), 63);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn bucket_index_and_upper_are_consistent() {
        // Every probe value must satisfy: value ≤ upper edge of its own
        // bucket, and the upper edge of the previous bucket < value's
        // bucket lower bound (monotone, non-overlapping buckets).
        let probes = [
            0u64,
            1,
            63,
            64,
            65,
            127,
            128,
            255,
            1000,
            4096,
            123_456_789,
            u64::MAX / 2,
            u64::MAX,
        ];
        for &v in &probes {
            let idx = Histogram::bucket_index(v);
            assert!(idx < BUCKETS, "index {idx} out of range for {v}");
            assert!(
                v <= Histogram::bucket_upper(idx),
                "{v} above its bucket's upper edge {}",
                Histogram::bucket_upper(idx)
            );
            if idx > 0 {
                assert!(
                    Histogram::bucket_upper(idx - 1) < v,
                    "{v} not above previous bucket's edge"
                );
            }
        }
    }

    #[test]
    fn quantile_error_is_bounded() {
        // Geometric-ish spread: quantile estimates must stay within the
        // 1/32 sub-bucket relative error of the true order statistic.
        let mut h = Histogram::new();
        let mut values: Vec<u64> = (0..2000u64).map(|i| 100 + i * i * 37).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for &(q, _) in &[(0.5, "p50"), (0.99, "p99"), (0.999, "p999")] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let truth = values[rank - 1] as f64;
            let est = h.quantile(q) as f64;
            assert!(
                est >= truth && est <= truth * (1.0 + 2.0 / 32.0),
                "q={q}: estimate {est} vs truth {truth}"
            );
        }
        assert_eq!(h.max(), *values.last().unwrap());
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let h = Histogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn time_series_evicts_oldest() {
        let mut s = TimeSeries::new(4);
        for v in 1..=6u64 {
            s.push(v);
        }
        assert_eq!(s.snapshot(), vec![3, 4, 5, 6]);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    fn time_series_partial_fill_keeps_order() {
        let mut s = TimeSeries::new(8);
        s.push(10);
        s.push(20);
        assert_eq!(s.snapshot(), vec![10, 20]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn metric_map_aggregates_per_id() {
        let mut map = MetricMap::with_series_capacity(16);
        map.consume_batch(&[
            MetricRecord { id: 1, value: 10 },
            MetricRecord { id: 2, value: 99 },
            MetricRecord { id: 1, value: 30 },
        ]);
        assert_eq!(map.len(), 2);
        assert_eq!(map.ids().collect::<Vec<_>>(), vec![1, 2]);
        let m1 = map.get(1).unwrap();
        assert_eq!(m1.series.snapshot(), vec![10, 30]);
        assert_eq!(m1.hist.count(), 2);
        assert!(map.get(3).is_none());
    }

    #[test]
    fn publisher_interns_names_and_publishes() {
        let (mut publisher, mut rx) = metric_channel(8);
        let a = publisher.metric_id("kernel.step");
        let b = publisher.metric_id("kernel.plan");
        assert_eq!(publisher.metric_id("kernel.step"), a);
        assert_ne!(a, b);
        assert!(publisher.publish(a, 100));
        assert!(publisher.publish(b, 200));
        assert_eq!(publisher.dropped(), 0);
        let mut out = Vec::new();
        rx.pop_batch(&mut out, 8);
        assert_eq!(
            out,
            vec![
                MetricRecord { id: a, value: 100 },
                MetricRecord { id: b, value: 200 }
            ]
        );
        assert_eq!(publisher.names(), ["kernel.step", "kernel.plan"]);
    }

    #[test]
    fn publisher_counts_drops_when_full() {
        let (mut publisher, mut rx) = metric_channel(2);
        let id = publisher.metric_id("m");
        assert!(publisher.publish(id, 1));
        assert!(publisher.publish(id, 2));
        assert!(!publisher.publish(id, 3), "full ring drops");
        assert_eq!(publisher.dropped(), 1);
        let mut out = Vec::new();
        rx.pop_batch(&mut out, 8);
        assert_eq!(out.len(), 2, "accepted records survive");
    }
}

//! A cache-line-padded SPSC ring buffer: the lock-free telemetry
//! transport's wire.
//!
//! One producer (the kernel's hot thread) streams fixed-size records to
//! one consumer (the collector thread) through a power-of-two array of
//! atomic words. There are no locks and no CAS loops: the producer owns
//! the tail cursor, the consumer owns the head cursor, and each side
//! publishes its cursor with a release store that the other side reads
//! with an acquire load — the classic single-producer/single-consumer
//! protocol. Unlike upstream SPSC queues the slots themselves are plain
//! relaxed [`AtomicU64`] words rather than `UnsafeCell`s, which keeps
//! the whole module inside `#![forbid(unsafe_code)]`: the release/
//! acquire edge on the cursors is what orders the relaxed slot accesses,
//! and on x86-64 a relaxed atomic store compiles to the same `mov` a
//! plain store would.
//!
//! **Overflow contract.** The ring never blocks the producer: when the
//! consumer falls behind, [`RingProducer::push_batch`] (and
//! [`push`](RingProducer::push)) drop the records that do not fit and
//! count them in the [`dropped`](RingProducer::dropped) counter —
//! telemetry may be lossy, the hot loop may not stall. Callers that need
//! a *lossless* stream (the [`RingTrace`] cache-trace transport, whose
//! consumer replays every op through the simulator) instead loop on the
//! non-counting [`RingProducer::try_push`]/
//! [`try_push_batch`](RingProducer::try_push_batch) and yield between
//! attempts: explicit backpressure at the transport layer, chosen per
//! stream, never silently inside the ring.
//!
//! SPSC is enforced by move semantics: [`ring`] returns one non-`Clone`
//! [`RingProducer`] and one non-`Clone` [`RingReader`]; whichever thread
//! owns a side is that side.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::sync::CachePadded;
use crate::{MemTrace, TraceOp};

/// Upper bound on [`RingItem::WORDS`]; lets the encode/decode scratch be
/// a fixed stack array instead of a per-call allocation.
pub const MAX_ITEM_WORDS: usize = 4;

/// A record the ring can carry: a fixed number of `u64` words.
///
/// Items are encoded into relaxed atomic words rather than stored as
/// `T`, which is what lets the ring stay safe code. Implementations must
/// round-trip exactly: `decode(encode(x)) == x`.
pub trait RingItem: Copy + Send + 'static {
    /// Words one item occupies (at most [`MAX_ITEM_WORDS`]).
    const WORDS: usize;

    /// Writes the item into `words` (`words.len() == Self::WORDS`).
    fn encode(self, words: &mut [u64]);

    /// Reads an item back from `words`.
    fn decode(words: &[u64]) -> Self;
}

/// Packed into a single word: the address in bits 1.. and the
/// read/write flag in bit 0. Addresses are therefore limited to 63 bits
/// — far beyond both the simulator's synthetic offsets and real
/// user-space pointers — and halving the slot traffic roughly halves
/// the hot-loop cost of the ring transport.
impl RingItem for TraceOp {
    const WORDS: usize = 1;

    #[inline]
    fn encode(self, words: &mut [u64]) {
        debug_assert!(self.addr < 1 << 63, "trace addresses are 63-bit");
        words[0] = (self.addr << 1) | u64::from(self.is_write);
    }

    #[inline]
    fn decode(words: &[u64]) -> Self {
        TraceOp {
            addr: words[0] >> 1,
            is_write: words[0] & 1 != 0,
        }
    }
}

/// The cursors both sides share. Cursors are monotonically increasing
/// and wrap through the power-of-two mask; padding keeps the producer's
/// tail, the consumer's head and the drop counter on separate lines.
///
/// The slot array itself is *not* in here: each side holds its own
/// `Arc<[AtomicU64]>` clone of it, a fat pointer whose data pointer and
/// length live inline in the producer/consumer struct. The hot push path
/// then reaches its slot through one indirection instead of chasing
/// `Arc -> Shared -> Box -> words`, which is measurable at
/// one-nanosecond-per-op scale.
struct Shared {
    /// Next unread slot; written only by the consumer (release), read by
    /// the producer (acquire) to learn how much space has been freed.
    head: CachePadded<AtomicUsize>,
    /// Next free slot; written only by the producer (release), read by
    /// the consumer (acquire) to learn how much data is available.
    tail: CachePadded<AtomicUsize>,
    /// Records rejected by the count-and-drop producer entry points.
    dropped: CachePadded<AtomicU64>,
}

/// Creates an SPSC ring carrying `T` with room for `capacity` items.
///
/// # Panics
///
/// Panics when `capacity` is not a power of two (the cursor arithmetic
/// relies on the mask) or when `T::WORDS` exceeds [`MAX_ITEM_WORDS`].
pub fn ring<T: RingItem>(capacity: usize) -> (RingProducer<T>, RingReader<T>) {
    assert!(
        capacity.is_power_of_two() && capacity > 0,
        "ring capacity must be a non-zero power of two, got {capacity}"
    );
    assert!(
        T::WORDS > 0 && T::WORDS <= MAX_ITEM_WORDS,
        "RingItem::WORDS must be in 1..={MAX_ITEM_WORDS}"
    );
    let words: Arc<[AtomicU64]> = (0..capacity * T::WORDS)
        .map(|_| AtomicU64::new(0))
        .collect();
    let shared = Arc::new(Shared {
        head: CachePadded::new(AtomicUsize::new(0)),
        tail: CachePadded::new(AtomicUsize::new(0)),
        dropped: CachePadded::new(AtomicU64::new(0)),
    });
    (
        RingProducer {
            shared: Arc::clone(&shared),
            words: Arc::clone(&words),
            mask: capacity - 1,
            capacity,
            cached_head: 0,
            tail: 0,
            published: 0,
            _items: PhantomData,
        },
        RingReader {
            shared,
            words,
            mask: capacity - 1,
            capacity,
            cached_tail: 0,
            head: 0,
            _items: PhantomData,
        },
    )
}

/// The producer side: owned by exactly one thread (not `Clone`).
///
/// Keeps a private mirror of its own tail (it is the only writer) and a
/// cached copy of the consumer's head, so the steady-state push touches
/// no shared line except the slots and one release store of the tail;
/// the head is re-read (acquire) only when the cached view looks full.
///
/// The per-item [`try_push`](Self::try_push) fast path additionally
/// *defers* the tail's release store: items land in their slots
/// immediately but become visible to the consumer only at the next
/// [`publish`](Self::publish) — the batched-producer-writes contract
/// without staging items through a local buffer first. The batch entry
/// points ([`try_push_batch`](Self::try_push_batch) and everything built
/// on it) publish on every call, and every slow path publishes before
/// waiting on the consumer, so deferral can never starve the reader.
pub struct RingProducer<T: RingItem> {
    shared: Arc<Shared>,
    /// Fat-pointer clone of the slot array (see [`Shared`]).
    words: Arc<[AtomicU64]>,
    mask: usize,
    capacity: usize,
    cached_head: usize,
    tail: usize,
    /// Tail value last release-stored to [`Shared::tail`]; slots in
    /// `published..tail` are written but not yet visible.
    published: usize,
    _items: PhantomData<fn(T)>,
}

impl<T: RingItem> std::fmt::Debug for RingProducer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingProducer")
            .field("capacity", &self.capacity)
            .field("tail", &self.tail)
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl<T: RingItem> RingProducer<T> {
    /// Ring capacity in items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records dropped so far by the count-and-drop entry points.
    pub fn dropped(&self) -> u64 {
        // ORDERING: Relaxed — the drop counter is a monotonic statistic;
        // no other memory is published through it.
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Items written to their slots but not yet made visible by a
    /// [`publish`](Self::publish).
    pub fn unpublished(&self) -> usize {
        self.tail.wrapping_sub(self.published)
    }

    /// Release-stores the tail, making every pushed item visible to the
    /// consumer. No-op when nothing is pending; the batch entry points
    /// call it automatically.
    #[inline]
    pub fn publish(&mut self) {
        if self.published != self.tail {
            // ORDERING: Release — pairs with the consumer's Acquire load
            // of tail in pop_batch/is_empty; it orders the Relaxed slot
            // stores before the tail becomes visible, which is the only
            // thing handing slot contents to the other thread.
            self.shared.tail.store(self.tail, Ordering::Release);
            self.published = self.tail;
        }
    }

    /// The full-ring slow path: publish what we have (so a retrying
    /// caller can never starve the reader), refresh the cached head, and
    /// report whether the ring is still full. Out of line so the
    /// steady-state `try_push` stays a handful of instructions.
    #[cold]
    #[inline(never)]
    fn still_full_after_refresh(&mut self) -> bool {
        self.publish();
        // ORDERING: Acquire — pairs with the consumer's Release store of
        // head in pop_batch: slots the consumer freed are only reused
        // after its reads of them are complete.
        self.cached_head = self.shared.head.load(Ordering::Acquire);
        self.tail.wrapping_sub(self.cached_head) == self.capacity
    }

    /// Pushes one item without publishing it (deferred batched
    /// publication; see the type docs). Returns `false` — without
    /// counting a drop — when the ring is full even after publishing
    /// the pending items and re-reading the consumer's head, so a
    /// retrying caller can never starve the reader.
    #[inline]
    pub fn try_push(&mut self, item: T) -> bool {
        if self.tail.wrapping_sub(self.cached_head) == self.capacity
            && self.still_full_after_refresh()
        {
            return false;
        }
        self.push_unpublished(item);
        true
    }

    /// Writes one item to its slot and advances the private tail,
    /// skipping the free-space check entirely. Logically (not memory-)
    /// unsafe: the caller must have established room via
    /// [`refresh_free`](Self::refresh_free) or a prior full check, or
    /// the item silently overwrites an unread slot. Kept `pub(crate)`
    /// so only this crate's transports ([`RingTrace`]) can amortize the
    /// check across a whole refill window.
    #[inline]
    pub(crate) fn push_unpublished(&mut self, item: T) {
        debug_assert!(
            self.tail.wrapping_sub(self.cached_head) < self.capacity,
            "push_unpublished requires established free space"
        );
        // ORDERING: Relaxed slot stores throughout — the Release store
        // of tail in `publish` is the sole synchronization point handing
        // these words to the consumer; ordering individual slot writes
        // against each other buys nothing in an SPSC ring.
        let mut scratch = [0u64; MAX_ITEM_WORDS];
        item.encode(&mut scratch[..T::WORDS]);
        if T::WORDS == 1 {
            // One-word items (every trace record today): the slot array
            // length IS the power-of-two capacity, so masking with
            // `len - 1` both replaces the `mask` field load and lets the
            // compiler prove the index in bounds — the hot store
            // compiles to a bare `mov`. The branch is const-folded per
            // monomorphization. `checked_sub` instead of an assert: the
            // array is never empty (`ring()` rejects capacity 0), and a
            // plain early return keeps the panic machinery — and with
            // it the fast path's register-save prologue — out of this
            // function entirely.
            let words = &*self.words;
            let Some(mask) = words.len().checked_sub(1) else {
                return;
            };
            words[self.tail & mask].store(scratch[0], Ordering::Relaxed);
        } else {
            let base = (self.tail & self.mask) * T::WORDS;
            for (k, word) in scratch[..T::WORDS].iter().enumerate() {
                // Relaxed is enough: the release store in `publish` is
                // what hands these words to the consumer.
                self.words[base + k].store(*word, Ordering::Relaxed);
            }
        }
        self.tail = self.tail.wrapping_add(1);
    }

    /// The producer's private tail cursor (monotonic, unwrapped).
    #[inline]
    pub(crate) fn tail_cursor(&self) -> usize {
        self.tail
    }

    /// Re-reads the consumer's head (acquire) and returns how many free
    /// slots the producer may now write without another check.
    #[inline]
    pub(crate) fn refresh_free(&mut self) -> usize {
        // ORDERING: Acquire — pairs with the consumer's Release store of
        // head; freed slots may only be rewritten after the consumer's
        // reads of them have completed.
        self.cached_head = self.shared.head.load(Ordering::Acquire);
        self.capacity - self.tail.wrapping_sub(self.cached_head)
    }

    /// Pushes a prefix of `items` — as many as currently fit — and
    /// returns how many were accepted, publishing everything written so
    /// far. Never waits, never drops: the caller decides whether the
    /// rejected suffix is retried (lossless backpressure) or abandoned.
    #[inline]
    pub fn try_push_batch(&mut self, items: &[T]) -> usize {
        let cap = self.capacity;
        let mut free = cap - self.tail.wrapping_sub(self.cached_head);
        if free < items.len() {
            // Publish before (possibly) reporting the ring full, so a
            // retrying caller's consumer always has work to drain.
            // ORDERING: the Acquire head load pairs with the consumer's
            // Release store in pop_batch (slot reuse); the Relaxed slot
            // stores below are handed over by the Release tail store at
            // the end of this fn.
            self.publish();
            self.cached_head = self.shared.head.load(Ordering::Acquire);
            free = cap - self.tail.wrapping_sub(self.cached_head);
        }
        let n = free.min(items.len());
        if n == 0 {
            return 0;
        }
        // Copy in contiguous runs: at most two slices per call (the
        // wrap), with the slot iteration bounds-check-free.
        let mask = self.mask;
        let mut written = 0;
        while written < n {
            let start = self.tail.wrapping_add(written) & mask;
            let run = (cap - start).min(n - written);
            let slots = &self.words[start * T::WORDS..(start + run) * T::WORDS];
            let batch = &items[written..written + run];
            for (slot, item) in slots.chunks_exact(T::WORDS).zip(batch.iter()) {
                let mut scratch = [0u64; MAX_ITEM_WORDS];
                item.encode(&mut scratch[..T::WORDS]);
                for (word, value) in slot.iter().zip(scratch[..T::WORDS].iter()) {
                    // Relaxed: the release store below publishes them.
                    word.store(*value, Ordering::Relaxed);
                }
            }
            written += run;
        }
        self.tail = self.tail.wrapping_add(n);
        self.shared.tail.store(self.tail, Ordering::Release);
        self.published = self.tail;
        n
    }

    /// Pushes `items` under the ring's overflow contract: whatever does
    /// not fit is dropped and counted. Returns how many were accepted.
    #[inline]
    pub fn push_batch(&mut self, items: &[T]) -> usize {
        let n = self.try_push_batch(items);
        let rejected = items.len() - n;
        if rejected > 0 {
            // ORDERING: Relaxed — the drop counter is a statistic; no
            // memory is published through it.
            self.shared
                .dropped
                .fetch_add(rejected as u64, Ordering::Relaxed);
        }
        n
    }

    /// Pushes one item under the count-and-drop contract; `false` means
    /// it was dropped (and counted).
    #[inline]
    pub fn push(&mut self, item: T) -> bool {
        self.push_batch(std::slice::from_ref(&item)) == 1
    }
}

/// The consumer side: owned by exactly one thread (not `Clone`).
pub struct RingReader<T: RingItem> {
    shared: Arc<Shared>,
    /// Fat-pointer clone of the slot array (see [`Shared`]).
    words: Arc<[AtomicU64]>,
    mask: usize,
    capacity: usize,
    cached_tail: usize,
    head: usize,
    _items: PhantomData<fn() -> T>,
}

impl<T: RingItem> std::fmt::Debug for RingReader<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingReader")
            .field("capacity", &self.capacity)
            .field("head", &self.head)
            .finish()
    }
}

impl<T: RingItem> RingReader<T> {
    /// Ring capacity in items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records dropped so far on the producer side.
    pub fn dropped(&self) -> u64 {
        // ORDERING: Relaxed — monotonic statistic, publishes no memory.
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Pops up to `max` items in production order, appending them to
    /// `out`; returns how many were popped (`0` = ring currently empty).
    ///
    /// `out` is the caller's reusable scratch — the collector allocates
    /// it once and clears it between drains, so the steady-state drain
    /// path performs no heap allocation.
    pub fn pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        // ORDERING: the Acquire tail load pairs with the producer's
        // Release tail store (publish): it makes the Relaxed slot stores
        // behind it visible before we read them below.
        let mut available = self.cached_tail.wrapping_sub(self.head);
        if available == 0 {
            self.cached_tail = self.shared.tail.load(Ordering::Acquire);
            available = self.cached_tail.wrapping_sub(self.head);
            if available == 0 {
                return 0;
            }
        }
        let n = available.min(max);
        let cap = self.capacity;
        let mask = self.mask;
        let mut popped = 0;
        while popped < n {
            let start = self.head.wrapping_add(popped) & mask;
            let run = (cap - start).min(n - popped);
            let slots = &self.words[start * T::WORDS..(start + run) * T::WORDS];
            for slot in slots.chunks_exact(T::WORDS) {
                let mut scratch = [0u64; MAX_ITEM_WORDS];
                for (value, word) in scratch[..T::WORDS].iter_mut().zip(slot.iter()) {
                    *value = word.load(Ordering::Relaxed);
                }
                out.push(T::decode(&scratch[..T::WORDS]));
            }
            popped += run;
        }
        self.head = self.head.wrapping_add(n);
        // ORDERING: Release — the producer's Acquire load of head must
        // also see our slot reads as completed before it overwrites
        // them.
        self.shared.head.store(self.head, Ordering::Release);
        n
    }

    /// `true` when the ring has no unread items at this instant.
    pub fn is_empty(&mut self) -> bool {
        if self.cached_tail.wrapping_sub(self.head) > 0 {
            return false;
        }
        // ORDERING: Acquire — pairs with the producer's Release tail
        // store, same contract as the refresh in pop_batch.
        self.cached_tail = self.shared.tail.load(Ordering::Acquire);
        self.cached_tail == self.head
    }
}

/// The collector-side contract: consumes batches drained from a ring.
///
/// The collector thread owns the expensive sinks (the cache simulator,
/// the metric map, report writers) and calls `consume_batch` with each
/// drained slice, in production order. Consumer callbacks must not read
/// the wall clock (`rtr-lint`'s `wall-clock` rule scans `consume_batch`
/// bodies in every crate, including the measurement crates): timing
/// happens on the producer side, the collector only aggregates.
pub trait RingConsumer<T>: Send {
    /// Consumes one drained batch, in production order.
    fn consume_batch(&mut self, batch: &[T]);
}

/// The lossless ring transport for kernel memory-access streams: a
/// [`MemTrace`] sink that writes each op straight into its ring slot
/// and release-stores the tail once per batch — the PR 6 batching
/// contract without staging ops through a local buffer first (the
/// double copy was the transport's dominant cost).
///
/// Unlike the metric path, a cache-trace stream cannot tolerate drops —
/// the consumer replays it through the simulator, and a dropped op would
/// change the report. The sink therefore applies *backpressure* instead
/// of the ring's count-and-drop contract: when the ring is full it
/// publishes what it has and yields the CPU until the collector frees
/// space. The hot loop can stall (bounded by how far the consumer is
/// behind) but the op stream arrives intact and in order, which is what
/// makes the ring-transported `CacheReport` byte-identical to the
/// inline path's.
///
/// Call [`flush`](RingTrace::flush) (or drop the session that owns the
/// sink) before shutting down the collector, otherwise the tail of the
/// stream is written but not yet published.
#[derive(Debug)]
pub struct RingTrace {
    producer: RingProducer<TraceOp>,
    batch: usize,
    /// Absolute tail cursor at which the per-op fast path must stop and
    /// run the slow path again: `limit - tail` slots are known-free (a
    /// past head refresh proved it) and within the current publication
    /// batch. The steady-state push therefore checks one equality
    /// instead of re-deriving free space and batch fill every op.
    limit: usize,
}

impl RingTrace {
    /// Ops per tail publication; matches
    /// [`BufferedTrace::DEFAULT_CAPACITY`](crate::BufferedTrace::DEFAULT_CAPACITY)
    /// so the ring path amortizes its release store exactly as the
    /// inline path amortizes its virtual dispatch. Publication is lazy:
    /// a filled batch becomes visible on the next push past the window
    /// boundary or at the next [`flush`](RingTrace::flush), whichever
    /// comes first.
    pub const DEFAULT_BATCH: usize = 4096;

    /// Wraps `producer` with the default publication batch size.
    pub fn new(producer: RingProducer<TraceOp>) -> Self {
        Self::with_batch(producer, Self::DEFAULT_BATCH)
    }

    /// Wraps `producer` with an explicit publication batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn with_batch(mut producer: RingProducer<TraceOp>, batch: usize) -> Self {
        assert!(batch > 0, "RingTrace batch size must be non-zero");
        let free = producer.refresh_free();
        let limit = producer.tail_cursor().wrapping_add(free.min(batch));
        RingTrace {
            producer,
            batch,
            limit,
        }
    }

    /// Ops written to their slots but not yet published to the consumer.
    pub fn pending(&self) -> usize {
        self.producer.unpublished()
    }

    /// Publishes the batched tail, making every emitted op visible.
    pub fn flush(&mut self) {
        self.producer.publish();
    }

    /// Flushes the tail and returns the producer handle.
    pub fn into_producer(mut self) -> RingProducer<TraceOp> {
        self.flush();
        self.producer
    }

    /// The push slow path, once per refill window: publish everything
    /// pending (so the waiting loop always leaves the consumer work to
    /// drain), wait for free space, size the next window, then land the
    /// op. Taking `op` here (rather than returning to the fast path)
    /// lets the hot `push` compile without a register-save prologue —
    /// the slow branch is a bare tail call.
    #[cold]
    #[inline(never)]
    fn push_slow(&mut self, op: TraceOp) {
        self.producer.publish();
        loop {
            let free = self.producer.refresh_free();
            if free > 0 {
                self.limit = self
                    .producer
                    .tail_cursor()
                    .wrapping_add(free.min(self.batch));
                break;
            }
            std::thread::yield_now();
        }
        self.producer.push_unpublished(op);
    }

    #[inline]
    fn push(&mut self, op: TraceOp) {
        // `tail < limit` slots are known-free, so the steady-state op is
        // one equality check plus the raw slot write. Publication is
        // lazy: the batch becomes visible when the *next* push crosses
        // the window boundary (or at the next `flush`), keeping the
        // boundary check itself off the per-op path.
        if self.producer.tail_cursor() != self.limit {
            self.producer.push_unpublished(op);
        } else {
            self.push_slow(op);
        }
    }
}

impl MemTrace for RingTrace {
    #[inline]
    fn read(&mut self, addr: u64) {
        self.push(TraceOp {
            addr,
            is_write: false,
        });
    }

    #[inline]
    fn write(&mut self, addr: u64) {
        self.push(TraceOp {
            addr,
            is_write: true,
        });
    }

    #[inline]
    fn process_batch(&mut self, ops: &[TraceOp]) {
        // Slot writes happen in call order, so the caller's batch lands
        // after any per-op pushes; try_push_batch publishes as it goes.
        let mut sent = 0;
        while sent < ops.len() {
            sent += self.producer.try_push_batch(&ops[sent..]);
            if sent < ops.len() {
                std::thread::yield_now();
            }
        }
        // The batch moved the tail without consuming the per-op fast
        // path's window: force the next push through the slow path.
        self.limit = self.producer.tail_cursor();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(addr: u64, is_write: bool) -> TraceOp {
        TraceOp { addr, is_write }
    }

    #[test]
    fn items_round_trip_in_order_across_wrap() {
        let (mut tx, mut rx) = ring::<TraceOp>(8);
        let mut popped = Vec::new();
        // 5 rounds of 6 through a capacity-8 ring crosses the wrap
        // boundary repeatedly.
        for round in 0..5u64 {
            let batch: Vec<TraceOp> = (0..6).map(|i| op(round * 6 + i, i % 2 == 0)).collect();
            assert_eq!(tx.push_batch(&batch), 6);
            assert_eq!(rx.pop_batch(&mut popped, 16), 6);
        }
        let expected: Vec<TraceOp> = (0..30).map(|i| op(i, i % 2 == 0)).collect();
        assert_eq!(popped, expected);
        assert_eq!(tx.dropped(), 0);
    }

    #[test]
    fn capacity_one_ring_alternates() {
        let (mut tx, mut rx) = ring::<TraceOp>(1);
        let mut out = Vec::new();
        for i in 0..4u64 {
            assert!(tx.push(op(i, false)));
            assert!(!tx.push(op(99, true)), "second push must be rejected");
            assert_eq!(rx.pop_batch(&mut out, 8), 1);
        }
        assert_eq!(out.len(), 4);
        assert_eq!(tx.dropped(), 4, "one counted drop per round");
        assert_eq!(rx.dropped(), 4);
    }

    #[test]
    fn push_batch_accepts_a_prefix_and_counts_the_rest() {
        let (mut tx, mut rx) = ring::<TraceOp>(4);
        let batch: Vec<TraceOp> = (0..7).map(|i| op(i, false)).collect();
        assert_eq!(tx.push_batch(&batch), 4);
        assert_eq!(tx.dropped(), 3);
        let mut out = Vec::new();
        rx.pop_batch(&mut out, 16);
        assert_eq!(out, batch[..4].to_vec(), "accepted ops are the prefix");
    }

    #[test]
    fn try_push_batch_never_counts_drops() {
        let (mut tx, _rx) = ring::<TraceOp>(2);
        assert_eq!(tx.try_push_batch(&[op(0, false); 5]), 2);
        assert_eq!(tx.try_push_batch(&[op(1, false)]), 0);
        assert_eq!(tx.dropped(), 0);
    }

    #[test]
    fn pop_respects_max_and_reports_empty() {
        let (mut tx, mut rx) = ring::<TraceOp>(8);
        assert!(rx.is_empty());
        tx.push_batch(&(0..6).map(|i| op(i, false)).collect::<Vec<_>>());
        assert!(!rx.is_empty());
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, 4), 4);
        assert_eq!(rx.pop_batch(&mut out, 4), 2);
        assert_eq!(rx.pop_batch(&mut out, 4), 0);
        assert!(rx.is_empty());
        assert_eq!(out.len(), 6);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_capacity_is_rejected() {
        let _ = ring::<TraceOp>(6);
    }

    #[test]
    fn ring_trace_flushes_batches_losslessly() {
        let (tx, mut rx) = ring::<TraceOp>(8);
        let mut trace = RingTrace::with_batch(tx, 3);
        trace.read(0);
        trace.write(64);
        assert_eq!(trace.pending(), 2);
        trace.read(128); // batch full; publication is lazy
        assert_eq!(trace.pending(), 3);
        trace.write(192); // crossing the window boundary auto-publishes
        assert_eq!(trace.pending(), 1);
        trace.flush();
        let mut out = Vec::new();
        rx.pop_batch(&mut out, 16);
        assert_eq!(
            out,
            vec![op(0, false), op(64, true), op(128, false), op(192, true)]
        );
        assert_eq!(rx.dropped(), 0);
    }

    #[test]
    fn ring_trace_process_batch_drains_pending_first() {
        let (tx, mut rx) = ring::<TraceOp>(16);
        let mut trace = RingTrace::with_batch(tx, 8);
        trace.read(0);
        trace.process_batch(&[op(64, true), op(128, false)]);
        assert_eq!(trace.pending(), 0);
        let mut out = Vec::new();
        rx.pop_batch(&mut out, 16);
        assert_eq!(out, vec![op(0, false), op(64, true), op(128, false)]);
    }

    #[test]
    fn try_push_defers_visibility_until_publish() {
        let (mut tx, mut rx) = ring::<TraceOp>(8);
        assert!(tx.try_push(op(1, false)));
        assert!(tx.try_push(op(2, true)));
        assert_eq!(tx.unpublished(), 2);
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, 8), 0, "unpublished = invisible");
        tx.publish();
        assert_eq!(tx.unpublished(), 0);
        assert_eq!(rx.pop_batch(&mut out, 8), 2);
        assert_eq!(out, vec![op(1, false), op(2, true)]);
    }

    #[test]
    fn full_ring_try_push_publishes_before_refusing() {
        let (mut tx, mut rx) = ring::<TraceOp>(2);
        assert!(tx.try_push(op(1, false)));
        assert!(tx.try_push(op(2, false)));
        // The refusal's slow path must have published the pending pair,
        // otherwise a retrying producer and the consumer deadlock.
        assert!(!tx.try_push(op(3, false)));
        assert_eq!(tx.dropped(), 0, "try_push never counts drops");
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, 8), 2);
        // Space freed: the retry lands.
        assert!(tx.try_push(op(3, false)));
        tx.publish();
        assert_eq!(rx.pop_batch(&mut out, 8), 1);
        assert_eq!(out.last(), Some(&op(3, false)));
    }

    #[test]
    fn trace_op_encoding_round_trips() {
        for case in [op(0, false), op((1 << 63) - 1, true), op(12345, true)] {
            let mut words = [0u64; TraceOp::WORDS];
            case.encode(&mut words);
            assert_eq!(TraceOp::decode(&words), case);
        }
    }
}

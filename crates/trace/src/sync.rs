//! Minimal concurrency primitives for the lock-free telemetry transport.
//!
//! Like the PR 1 `vendor/` stubs, this module exists because the build is
//! fully offline: upstream the ring would sit on `crossbeam_utils`'s
//! `CachePadded`, but vendoring a whole utility crate for one alignment
//! wrapper is not worth it. Everything else the ring needs
//! ([`core::sync::atomic::AtomicUsize`]/[`AtomicU64`](core::sync::atomic::AtomicU64)
//! with acquire/release orderings, [`std::thread::yield_now`] for
//! backpressure, [`std::sync::Arc`] for the shared allocation) has lived
//! in `std` since well before the suite's MSRV, so the ring itself is
//! dependency-free and — unlike upstream SPSC queues — entirely safe
//! code. Swap this wrapper back to `crossbeam_utils::CachePadded` if a
//! future environment has registry access.

/// Pads and aligns a value to 64 bytes so two instances never share a
/// cache line.
///
/// The SPSC ring keeps its producer cursor, consumer cursor and drop
/// counter in separate `CachePadded` cells: the producer thread writes
/// the tail on every publish and the consumer writes the head on every
/// drain, and without padding each store would invalidate the other
/// core's line (false sharing), putting a coherence miss on the hot
/// path the transport exists to keep clean.
///
/// 64 bytes matches the line size of every x86-64 part and of the cache
/// model in `rtr-archsim`; over-aligning on platforms with shorter lines
/// costs only a few bytes per cell.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded(value)
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_cells_are_line_aligned_and_line_sized() {
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 64);
        assert_eq!(std::mem::size_of::<CachePadded<u64>>(), 64);
        // Adjacent cells in a struct therefore occupy distinct lines.
        struct Cursors {
            head: CachePadded<u64>,
            tail: CachePadded<u64>,
        }
        let c = Cursors {
            head: CachePadded::new(1),
            tail: CachePadded::new(2),
        };
        let head = std::ptr::addr_of!(c.head) as usize;
        let tail = std::ptr::addr_of!(c.tail) as usize;
        assert!(head.abs_diff(tail) >= 64);
        assert_eq!(*c.head, 1);
        assert_eq!(*c.tail, 2);
    }

    #[test]
    fn deref_mut_reaches_the_inner_value() {
        let mut cell = CachePadded::new(5u32);
        *cell += 1;
        assert_eq!(cell.0, 6);
    }
}

//! The suite's memory-trace sink contract.
//!
//! Kernels *emit* a stream of synthetic memory accesses into a [`MemTrace`]
//! sink; backends (the cache simulator in `rtr-archsim`, the counting and
//! recording sinks here) *consume* the stream. The dependency points from
//! the backend to this contract, never from a kernel to a backend: kernel
//! crates depend only on `rtr-trace`, and `rtr-archsim::MemorySim`
//! implements [`MemTrace`] to plug itself underneath them.
//!
//! The default sink is [`NullTrace`], whose methods are empty `#[inline]`
//! bodies: a kernel generic over `T: MemTrace + ?Sized` monomorphizes the
//! untraced path to exactly the code it had before tracing existed — no
//! allocation, no branch, no call.
//!
//! # Example
//!
//! ```
//! use rtr_trace::{CountingTrace, MemTrace, NullTrace};
//!
//! fn kernel<T: MemTrace + ?Sized>(trace: &mut T) {
//!     for i in 0..4u64 {
//!         trace.read(i * 64);
//!     }
//!     trace.write(0);
//! }
//!
//! kernel(&mut NullTrace); // compiles to nothing
//! let mut counts = CountingTrace::default();
//! kernel(&mut counts);
//! assert_eq!((counts.reads, counts.writes), (4, 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A sink for a kernel's synthetic memory-access stream.
///
/// Addresses are byte addresses in a flat synthetic space; each kernel
/// documents its own region layout (e.g. RRT reads `payload * 40` for a
/// five-`f64` arm configuration). The trait is dyn-safe so harness code
/// can hold a `&mut dyn MemTrace` chosen at runtime, while kernels stay
/// generic (`T: MemTrace + ?Sized`) so the [`NullTrace`] path folds away.
pub trait MemTrace {
    /// Records a load of the line containing `addr`.
    fn read(&mut self, addr: u64);

    /// Records a store to the line containing `addr`.
    fn write(&mut self, addr: u64);

    /// `false` only for sinks that discard the stream ([`NullTrace`]).
    ///
    /// Kernels with a parallel untraced hot loop use this to select the
    /// sequential emission path when a real sink is attached; outputs are
    /// bit-identical either way (the suite's determinism contract).
    #[inline]
    fn enabled(&self) -> bool {
        true
    }
}

impl<T: MemTrace + ?Sized> MemTrace for &mut T {
    #[inline]
    fn read(&mut self, addr: u64) {
        (**self).read(addr);
    }

    #[inline]
    fn write(&mut self, addr: u64) {
        (**self).write(addr);
    }

    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
}

/// The do-nothing sink: the default for untraced runs.
///
/// Every method is an empty `#[inline]` body and [`MemTrace::enabled`]
/// returns `false`, so monomorphized call sites vanish entirely in
/// release builds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTrace;

impl MemTrace for NullTrace {
    #[inline]
    fn read(&mut self, _addr: u64) {}

    #[inline]
    fn write(&mut self, _addr: u64) {}

    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

/// A sink that counts reads and writes; for tests and overhead probes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingTrace {
    /// Number of `read` calls observed.
    pub reads: u64,
    /// Number of `write` calls observed.
    pub writes: u64,
}

impl CountingTrace {
    /// Total accesses observed.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

impl MemTrace for CountingTrace {
    #[inline]
    fn read(&mut self, _addr: u64) {
        self.reads += 1;
    }

    #[inline]
    fn write(&mut self, _addr: u64) {
        self.writes += 1;
    }
}

/// A [`Copy`] handle onto a sink parked in a [`RefCell`], for kernels
/// whose emission sites sit behind `&self` (interior mutability).
///
/// Symbolic planning is the motivating case: the search space interns
/// states from `successors(&self, ..)` while the search engine holds its
/// own `&mut` sink. Both sides get a `SharedTrace` copy over the same
/// cell; each op takes a short non-reentrant borrow.
///
/// [`RefCell`]: core::cell::RefCell
pub struct SharedTrace<'a, 'b, T: MemTrace + ?Sized> {
    inner: &'a core::cell::RefCell<&'b mut T>,
}

impl<'a, 'b, T: MemTrace + ?Sized> SharedTrace<'a, 'b, T> {
    /// Wraps a cell holding the real sink.
    pub fn new(inner: &'a core::cell::RefCell<&'b mut T>) -> Self {
        SharedTrace { inner }
    }
}

impl<T: MemTrace + ?Sized> Clone for SharedTrace<'_, '_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T: MemTrace + ?Sized> Copy for SharedTrace<'_, '_, T> {}

impl<T: MemTrace + ?Sized> MemTrace for SharedTrace<'_, '_, T> {
    #[inline]
    fn read(&mut self, addr: u64) {
        self.inner.borrow_mut().read(addr);
    }

    #[inline]
    fn write(&mut self, addr: u64) {
        self.inner.borrow_mut().write(addr);
    }

    #[inline]
    fn enabled(&self) -> bool {
        self.inner.borrow().enabled()
    }
}

/// One recorded access: the address and whether it was a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Byte address in the kernel's synthetic address space.
    pub addr: u64,
    /// `true` for a store, `false` for a load.
    pub is_write: bool,
}

/// A sink that records the full ordered access stream; for bit-identity
/// and emission-shape tests (not for hot loops — it allocates).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecordingTrace {
    /// The ordered access stream as emitted by the kernel.
    pub ops: Vec<TraceOp>,
}

impl RecordingTrace {
    /// Number of recorded loads.
    pub fn reads(&self) -> u64 {
        self.ops.iter().filter(|op| !op.is_write).count() as u64
    }

    /// Number of recorded stores.
    pub fn writes(&self) -> u64 {
        self.ops.iter().filter(|op| op.is_write).count() as u64
    }
}

impl MemTrace for RecordingTrace {
    fn read(&mut self, addr: u64) {
        self.ops.push(TraceOp {
            addr,
            is_write: false,
        });
    }

    fn write(&mut self, addr: u64) {
        self.ops.push(TraceOp {
            addr,
            is_write: true,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emit<T: MemTrace + ?Sized>(trace: &mut T) {
        trace.read(0);
        trace.read(64);
        trace.write(128);
    }

    #[test]
    fn null_trace_is_disabled() {
        assert!(!NullTrace.enabled());
        emit(&mut NullTrace); // must compile and do nothing
    }

    #[test]
    fn counting_trace_counts_reads_and_writes() {
        let mut t = CountingTrace::default();
        emit(&mut t);
        assert_eq!(t.reads, 2);
        assert_eq!(t.writes, 1);
        assert_eq!(t.total(), 3);
        assert!(t.enabled());
    }

    #[test]
    fn recording_trace_preserves_order_and_kind() {
        let mut t = RecordingTrace::default();
        emit(&mut t);
        assert_eq!(
            t.ops,
            vec![
                TraceOp {
                    addr: 0,
                    is_write: false
                },
                TraceOp {
                    addr: 64,
                    is_write: false
                },
                TraceOp {
                    addr: 128,
                    is_write: true
                },
            ]
        );
        assert_eq!(t.reads(), 2);
        assert_eq!(t.writes(), 1);
    }

    #[test]
    fn shared_trace_funnels_both_sides_into_one_sink() {
        let mut counts = CountingTrace::default();
        {
            let cell = core::cell::RefCell::new(&mut counts);
            let mut side_a = SharedTrace::new(&cell);
            let mut side_b = side_a; // Copy
            assert!(side_a.enabled());
            side_a.read(0);
            side_b.write(64);
        }
        assert_eq!((counts.reads, counts.writes), (1, 1));
    }

    #[test]
    fn dyn_sink_and_reborrow_both_work() {
        let mut counts = CountingTrace::default();
        {
            let dynamic: &mut dyn MemTrace = &mut counts;
            emit(dynamic);
        }
        let mut borrowed = &mut counts;
        emit(&mut borrowed);
        assert_eq!(counts.total(), 6);
        assert!(counts.enabled());
    }
}

//! The suite's memory-trace sink contract.
//!
//! Kernels *emit* a stream of synthetic memory accesses into a [`MemTrace`]
//! sink; backends (the cache simulator in `rtr-archsim`, the counting and
//! recording sinks here) *consume* the stream. The dependency points from
//! the backend to this contract, never from a kernel to a backend: kernel
//! crates depend only on `rtr-trace`, and `rtr-archsim::MemorySim`
//! implements [`MemTrace`] to plug itself underneath them.
//!
//! The default sink is [`NullTrace`], whose methods are empty `#[inline]`
//! bodies: a kernel generic over `T: MemTrace + ?Sized` monomorphizes the
//! untraced path to exactly the code it had before tracing existed — no
//! allocation, no branch, no call.
//!
//! # Example
//!
//! ```
//! use rtr_trace::{CountingTrace, MemTrace, NullTrace};
//!
//! fn kernel<T: MemTrace + ?Sized>(trace: &mut T) {
//!     for i in 0..4u64 {
//!         trace.read(i * 64);
//!     }
//!     trace.write(0);
//! }
//!
//! kernel(&mut NullTrace); // compiles to nothing
//! let mut counts = CountingTrace::default();
//! kernel(&mut counts);
//! assert_eq!((counts.reads, counts.writes), (4, 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metric;
pub mod ring;
pub mod sync;

pub use metric::{metric_channel, Histogram, Metric, MetricMap, MetricPublisher, MetricRecord};
pub use ring::{ring, RingConsumer, RingItem, RingProducer, RingReader, RingTrace};
pub use sync::CachePadded;

/// A sink for a kernel's synthetic memory-access stream.
///
/// Addresses are byte addresses in a flat synthetic space; each kernel
/// documents its own region layout (e.g. RRT reads `payload * 40` for a
/// five-`f64` arm configuration). The trait is dyn-safe so harness code
/// can hold a `&mut dyn MemTrace` chosen at runtime, while kernels stay
/// generic (`T: MemTrace + ?Sized`) so the [`NullTrace`] path folds away.
pub trait MemTrace {
    /// Records a load of the line containing `addr`.
    fn read(&mut self, addr: u64);

    /// Records a store to the line containing `addr`.
    fn write(&mut self, addr: u64);

    /// `false` only for sinks that discard the stream ([`NullTrace`]).
    ///
    /// Kernels with a parallel untraced hot loop use this to select the
    /// sequential emission path when a real sink is attached; outputs are
    /// bit-identical either way (the suite's determinism contract).
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes an ordered batch of recorded ops.
    ///
    /// The contract is strict equivalence: a sink's observable state after
    /// `process_batch(ops)` must be identical to replaying each op through
    /// [`read`](MemTrace::read)/[`write`](MemTrace::write) in order — the
    /// default body does exactly that. Sinks with a cheaper bulk path
    /// (bulk counters, a monomorphic simulation loop) override it; callers
    /// like [`BufferedTrace`] use it to amortize virtual dispatch on a
    /// `&mut dyn MemTrace` into one call per buffer.
    #[inline]
    fn process_batch(&mut self, ops: &[TraceOp]) {
        for op in ops {
            if op.is_write {
                self.write(op.addr);
            } else {
                self.read(op.addr);
            }
        }
    }
}

impl<T: MemTrace + ?Sized> MemTrace for &mut T {
    #[inline]
    fn read(&mut self, addr: u64) {
        (**self).read(addr);
    }

    #[inline]
    fn write(&mut self, addr: u64) {
        (**self).write(addr);
    }

    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn process_batch(&mut self, ops: &[TraceOp]) {
        (**self).process_batch(ops);
    }
}

/// The do-nothing sink: the default for untraced runs.
///
/// Every method is an empty `#[inline]` body and [`MemTrace::enabled`]
/// returns `false`, so monomorphized call sites vanish entirely in
/// release builds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTrace;

impl MemTrace for NullTrace {
    #[inline]
    fn read(&mut self, _addr: u64) {}

    #[inline]
    fn write(&mut self, _addr: u64) {}

    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn process_batch(&mut self, _ops: &[TraceOp]) {}
}

/// A sink that counts reads and writes; for tests and overhead probes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingTrace {
    /// Number of `read` calls observed.
    pub reads: u64,
    /// Number of `write` calls observed.
    pub writes: u64,
}

impl CountingTrace {
    /// Total accesses observed.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

impl MemTrace for CountingTrace {
    #[inline]
    fn read(&mut self, _addr: u64) {
        self.reads += 1;
    }

    #[inline]
    fn write(&mut self, _addr: u64) {
        self.writes += 1;
    }

    #[inline]
    fn process_batch(&mut self, ops: &[TraceOp]) {
        let writes = ops.iter().filter(|op| op.is_write).count() as u64;
        self.writes += writes;
        self.reads += ops.len() as u64 - writes;
    }
}

/// A [`Copy`] handle onto a sink parked in a [`RefCell`], for kernels
/// whose emission sites sit behind `&self` (interior mutability).
///
/// Symbolic planning is the motivating case: the search space interns
/// states from `successors(&self, ..)` while the search engine holds its
/// own `&mut` sink. Both sides get a `SharedTrace` copy over the same
/// cell; each op takes a short non-reentrant borrow.
///
/// [`RefCell`]: core::cell::RefCell
pub struct SharedTrace<'a, 'b, T: MemTrace + ?Sized> {
    inner: &'a core::cell::RefCell<&'b mut T>,
}

impl<'a, 'b, T: MemTrace + ?Sized> SharedTrace<'a, 'b, T> {
    /// Wraps a cell holding the real sink.
    pub fn new(inner: &'a core::cell::RefCell<&'b mut T>) -> Self {
        SharedTrace { inner }
    }
}

impl<T: MemTrace + ?Sized> Clone for SharedTrace<'_, '_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T: MemTrace + ?Sized> Copy for SharedTrace<'_, '_, T> {}

impl<T: MemTrace + ?Sized> MemTrace for SharedTrace<'_, '_, T> {
    #[inline]
    fn read(&mut self, addr: u64) {
        self.inner.borrow_mut().read(addr);
    }

    #[inline]
    fn write(&mut self, addr: u64) {
        self.inner.borrow_mut().write(addr);
    }

    #[inline]
    fn enabled(&self) -> bool {
        self.inner.borrow().enabled()
    }

    #[inline]
    fn process_batch(&mut self, ops: &[TraceOp]) {
        self.inner.borrow_mut().process_batch(ops);
    }
}

/// One recorded access: the address and whether it was a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Byte address in the kernel's synthetic address space.
    pub addr: u64,
    /// `true` for a store, `false` for a load.
    pub is_write: bool,
}

/// A sink that records the full ordered access stream; for bit-identity
/// and emission-shape tests (not for hot loops — it allocates).
///
/// Load/store tallies are kept as running counters so the per-assertion
/// [`reads`](RecordingTrace::reads)/[`writes`](RecordingTrace::writes)
/// calls in the kernel emission tests stay O(1) instead of re-scanning
/// the stream. `ops` stays public for shape assertions; push through the
/// [`MemTrace`] methods so the counters stay in sync.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecordingTrace {
    /// The ordered access stream as emitted by the kernel.
    pub ops: Vec<TraceOp>,
    read_count: u64,
    write_count: u64,
}

impl RecordingTrace {
    /// Number of recorded loads.
    pub fn reads(&self) -> u64 {
        self.read_count
    }

    /// Number of recorded stores.
    pub fn writes(&self) -> u64 {
        self.write_count
    }
}

impl MemTrace for RecordingTrace {
    fn read(&mut self, addr: u64) {
        self.read_count += 1;
        self.ops.push(TraceOp {
            addr,
            is_write: false,
        });
    }

    fn write(&mut self, addr: u64) {
        self.write_count += 1;
        self.ops.push(TraceOp {
            addr,
            is_write: true,
        });
    }

    fn process_batch(&mut self, ops: &[TraceOp]) {
        let writes = ops.iter().filter(|op| op.is_write).count() as u64;
        self.write_count += writes;
        self.read_count += ops.len() as u64 - writes;
        self.ops.extend_from_slice(ops);
    }
}

/// A fixed-capacity buffering adapter that turns per-op `read`/`write`
/// calls into one [`MemTrace::process_batch`] call per full buffer.
///
/// Harness code holds sinks as `&mut dyn MemTrace`, so every access pays
/// a virtual dispatch; wrapping the sink in a `BufferedTrace` amortizes
/// that to one dispatch per `capacity` ops. The buffer is allocated once
/// at construction and never grows — the steady-state path is a bounds
/// check, a push into reserved storage, and a branch.
///
/// Ops flow through strictly in emission order (the buffer is flushed,
/// never reordered), so any sink sees the exact stream it would have
/// seen unbuffered — only the call granularity changes. Call
/// [`into_inner`](BufferedTrace::into_inner) (or `flush`) before reading
/// results out of the wrapped sink, otherwise the tail of the stream is
/// still pending.
///
/// # Example
///
/// ```
/// use rtr_trace::{BufferedTrace, CountingTrace, MemTrace};
///
/// let mut buffered = BufferedTrace::with_capacity(CountingTrace::default(), 2);
/// buffered.read(0);
/// buffered.read(64); // buffer full: flushes one batch of 2
/// buffered.write(128); // still pending
/// let counts = buffered.into_inner(); // flushes the tail
/// assert_eq!((counts.reads, counts.writes), (2, 1));
/// ```
#[derive(Debug, Clone)]
pub struct BufferedTrace<S: MemTrace> {
    inner: S,
    buf: Vec<TraceOp>,
    capacity: usize,
}

impl<S: MemTrace> BufferedTrace<S> {
    /// Default buffer capacity in ops; large enough to amortize dispatch,
    /// small enough to stay resident in L1D (4096 × 16 B = 64 KiB... of
    /// which only the live prefix is touched between flushes).
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Wraps `inner` with the default buffer capacity.
    pub fn new(inner: S) -> Self {
        Self::with_capacity(inner, Self::DEFAULT_CAPACITY)
    }

    /// Wraps `inner` with an explicit buffer capacity (ops per flush).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(inner: S, capacity: usize) -> Self {
        assert!(capacity > 0, "BufferedTrace capacity must be non-zero");
        BufferedTrace {
            inner,
            buf: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Ops buffered but not yet delivered to the inner sink.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Delivers all buffered ops to the inner sink as one batch.
    pub fn flush(&mut self) {
        if !self.buf.is_empty() {
            self.inner.process_batch(&self.buf);
            self.buf.clear();
        }
    }

    /// Flushes the tail and returns the inner sink.
    pub fn into_inner(mut self) -> S {
        self.flush();
        self.inner
    }

    #[inline]
    fn push(&mut self, op: TraceOp) {
        self.buf.push(op);
        if self.buf.len() == self.capacity {
            self.flush();
        }
    }
}

impl<S: MemTrace> MemTrace for BufferedTrace<S> {
    #[inline]
    fn read(&mut self, addr: u64) {
        self.push(TraceOp {
            addr,
            is_write: false,
        });
    }

    #[inline]
    fn write(&mut self, addr: u64) {
        self.push(TraceOp {
            addr,
            is_write: true,
        });
    }

    /// Delegates to the inner sink: buffering is a transport detail and
    /// must not flip a kernel onto its traced emission path by itself.
    #[inline]
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    #[inline]
    fn process_batch(&mut self, ops: &[TraceOp]) {
        // Preserve stream order: drain what's pending, then hand the
        // caller's batch through without copying it into the buffer.
        self.flush();
        self.inner.process_batch(ops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emit<T: MemTrace + ?Sized>(trace: &mut T) {
        trace.read(0);
        trace.read(64);
        trace.write(128);
    }

    #[test]
    fn null_trace_is_disabled() {
        assert!(!NullTrace.enabled());
        emit(&mut NullTrace); // must compile and do nothing
    }

    #[test]
    fn counting_trace_counts_reads_and_writes() {
        let mut t = CountingTrace::default();
        emit(&mut t);
        assert_eq!(t.reads, 2);
        assert_eq!(t.writes, 1);
        assert_eq!(t.total(), 3);
        assert!(t.enabled());
    }

    #[test]
    fn recording_trace_preserves_order_and_kind() {
        let mut t = RecordingTrace::default();
        emit(&mut t);
        assert_eq!(
            t.ops,
            vec![
                TraceOp {
                    addr: 0,
                    is_write: false
                },
                TraceOp {
                    addr: 64,
                    is_write: false
                },
                TraceOp {
                    addr: 128,
                    is_write: true
                },
            ]
        );
        assert_eq!(t.reads(), 2);
        assert_eq!(t.writes(), 1);
    }

    #[test]
    fn shared_trace_funnels_both_sides_into_one_sink() {
        let mut counts = CountingTrace::default();
        {
            let cell = core::cell::RefCell::new(&mut counts);
            let mut side_a = SharedTrace::new(&cell);
            let mut side_b = side_a; // Copy
            assert!(side_a.enabled());
            side_a.read(0);
            side_b.write(64);
        }
        assert_eq!((counts.reads, counts.writes), (1, 1));
    }

    #[test]
    fn process_batch_default_matches_per_op_replay() {
        let ops = vec![
            TraceOp {
                addr: 0,
                is_write: false,
            },
            TraceOp {
                addr: 64,
                is_write: true,
            },
            TraceOp {
                addr: 0,
                is_write: false,
            },
        ];
        let mut batched = RecordingTrace::default();
        batched.process_batch(&ops);
        let mut per_op = RecordingTrace::default();
        for op in &ops {
            if op.is_write {
                per_op.write(op.addr);
            } else {
                per_op.read(op.addr);
            }
        }
        assert_eq!(batched, per_op);
        assert_eq!((batched.reads(), batched.writes()), (2, 1));

        let mut counts = CountingTrace::default();
        counts.process_batch(&ops);
        assert_eq!((counts.reads, counts.writes), (2, 1));
    }

    #[test]
    fn buffered_trace_preserves_order_across_flush_boundaries() {
        // Capacity 2 forces a flush mid-stream; the recorded stream must
        // be indistinguishable from the unbuffered one.
        let mut buffered = BufferedTrace::with_capacity(RecordingTrace::default(), 2);
        emit(&mut buffered);
        assert_eq!(buffered.pending(), 1); // 3 ops, one flush of 2
        let recorded = buffered.into_inner();
        let mut direct = RecordingTrace::default();
        emit(&mut direct);
        assert_eq!(recorded, direct);
    }

    #[test]
    fn buffered_trace_flush_is_idempotent_and_batch_drains_first() {
        let mut buffered = BufferedTrace::with_capacity(RecordingTrace::default(), 8);
        buffered.read(0);
        buffered.flush();
        buffered.flush(); // empty flush must not emit a batch
        buffered.process_batch(&[TraceOp {
            addr: 64,
            is_write: true,
        }]);
        assert_eq!(buffered.pending(), 0);
        let recorded = buffered.into_inner();
        assert_eq!(
            recorded.ops,
            vec![
                TraceOp {
                    addr: 0,
                    is_write: false
                },
                TraceOp {
                    addr: 64,
                    is_write: true
                },
            ]
        );
    }

    #[test]
    fn buffered_trace_enabled_delegates_to_inner() {
        assert!(!BufferedTrace::new(NullTrace).enabled());
        assert!(BufferedTrace::new(CountingTrace::default()).enabled());
    }

    #[test]
    fn dyn_sink_and_reborrow_both_work() {
        let mut counts = CountingTrace::default();
        {
            let dynamic: &mut dyn MemTrace = &mut counts;
            emit(dynamic);
        }
        let mut borrowed = &mut counts;
        emit(&mut borrowed);
        assert_eq!(counts.total(), 6);
        assert!(counts.enabled());
    }
}

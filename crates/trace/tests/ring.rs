//! Ring-semantics tests: proptests for wrap-around, capacity-1 and
//! overflow-drop accounting, plus two-thread stress tests pinning the
//! order-preservation and loss contracts across a real producer/consumer
//! thread pair.

use proptest::prelude::*;
use rtr_trace::ring::{ring, RingItem};
use rtr_trace::{MemTrace, RingTrace, TraceOp};

fn op(addr: u64, is_write: bool) -> TraceOp {
    TraceOp { addr, is_write }
}

/// A single-thread lossless pump: pushes each batch with backpressure
/// (drain-when-full) and drains the rest, returning the popped stream.
fn pump_lossless(capacity: usize, batches: &[Vec<TraceOp>]) -> (Vec<TraceOp>, u64) {
    let (mut tx, mut rx) = ring::<TraceOp>(capacity);
    let mut popped = Vec::new();
    for batch in batches {
        let mut sent = 0;
        while sent < batch.len() {
            sent += tx.try_push_batch(&batch[sent..]);
            if sent < batch.len() {
                // Ring full: the "collector" catches up.
                rx.pop_batch(&mut popped, capacity);
            }
        }
    }
    while rx.pop_batch(&mut popped, 64) > 0 {}
    (popped, tx.dropped())
}

proptest! {
    /// Wrap-around: any interleaving of small pushes and pops through a
    /// small ring preserves the stream exactly (positions wrap the mask
    /// many times over).
    #[test]
    fn wrap_around_preserves_stream(
        capacity_log2 in 0u32..6,
        lens in prop::collection::vec(0usize..20, 1..30),
    ) {
        let capacity = 1usize << capacity_log2;
        let mut next = 0u64;
        let batches: Vec<Vec<TraceOp>> = lens
            .iter()
            .map(|&len| {
                (0..len)
                    .map(|_| {
                        next += 1;
                        op(next, next.is_multiple_of(3))
                    })
                    .collect()
            })
            .collect();
        let expected: Vec<TraceOp> = batches.iter().flatten().copied().collect();
        let (popped, dropped) = pump_lossless(capacity, &batches);
        prop_assert_eq!(popped, expected);
        prop_assert_eq!(dropped, 0u64);
    }

    /// Capacity 1 is the degenerate ring: strict alternation, every
    /// overflow counted.
    #[test]
    fn capacity_one_counts_every_overflow(pushes in prop::collection::vec(1usize..4, 1..20)) {
        let (mut tx, mut rx) = ring::<TraceOp>(1);
        let mut out = Vec::new();
        let mut expected_drops = 0u64;
        let mut expected_accepted = 0usize;
        for (round, &burst) in pushes.iter().enumerate() {
            let batch: Vec<TraceOp> = (0..burst as u64)
                .map(|i| op(round as u64 * 10 + i, false))
                .collect();
            let accepted = tx.push_batch(&batch);
            prop_assert_eq!(accepted, 1, "exactly one op fits an empty capacity-1 ring");
            expected_drops += (burst - 1) as u64;
            expected_accepted += 1;
            prop_assert_eq!(rx.pop_batch(&mut out, 4), 1);
        }
        prop_assert_eq!(tx.dropped(), expected_drops);
        prop_assert_eq!(out.len(), expected_accepted);
    }

    /// Count-and-drop accounting: accepted + dropped always equals the
    /// number offered, the accepted stream is the in-order prefix
    /// concatenation, and the drop counter never moves on `try_`.
    #[test]
    fn overflow_drop_accounting_balances(
        capacity_log2 in 0u32..5,
        lens in prop::collection::vec(0usize..24, 1..20),
        drain_every in 1usize..5,
    ) {
        let capacity = 1usize << capacity_log2;
        let (mut tx, mut rx) = ring::<TraceOp>(capacity);
        let mut popped = Vec::new();
        let mut offered = 0u64;
        let mut accepted = 0u64;
        let mut next = 0u64;
        for (i, &len) in lens.iter().enumerate() {
            let batch: Vec<TraceOp> = (0..len)
                .map(|_| {
                    next += 1;
                    op(next, next.is_multiple_of(2))
                })
                .collect();
            offered += len as u64;
            accepted += tx.push_batch(&batch) as u64;
            if i % drain_every == 0 {
                rx.pop_batch(&mut popped, capacity / 2 + 1);
            }
        }
        while rx.pop_batch(&mut popped, 64) > 0 {}
        prop_assert_eq!(accepted + tx.dropped(), offered);
        prop_assert_eq!(popped.len() as u64, accepted);
        // The surviving stream must be a subsequence of the offered one
        // in order; since ops carry unique increasing addrs, it suffices
        // that addrs are strictly increasing.
        prop_assert!(popped.windows(2).all(|w| w[0].addr < w[1].addr));
    }
}

/// Two-thread stress: a lossless producer (RingTrace backpressure) racing
/// a live consumer must deliver the exact produced stream, in order.
#[test]
fn two_thread_lossless_stream_is_order_identical() {
    const OPS: u64 = 200_000;
    let (tx, mut rx) = ring::<TraceOp>(1 << 10);
    let producer = std::thread::spawn(move || {
        let mut trace = RingTrace::with_batch(tx, 256);
        for i in 0..OPS {
            // Mix the entry points: per-op and pre-batched, like a real
            // kernel stream through BufferedTrace.
            if i % 1000 == 999 {
                // Sentinel addresses near the top of the 63-bit packed
                // address space.
                let batch: Vec<TraceOp> = (0..5).map(|k| op((1 << 63) - 1 - k, true)).collect();
                trace.process_batch(&batch);
            }
            if i % 2 == 0 {
                trace.read(i * 64);
            } else {
                trace.write(i * 64);
            }
        }
        trace.into_producer().dropped()
    });

    let mut popped = Vec::new();
    let expected_len = (OPS + OPS / 1000 * 5) as usize;
    let mut scratch = Vec::new();
    while popped.len() < expected_len {
        scratch.clear();
        if rx.pop_batch(&mut scratch, 512) == 0 {
            std::thread::yield_now();
            continue;
        }
        popped.extend_from_slice(&scratch);
    }
    let dropped = producer.join().unwrap();
    assert_eq!(dropped, 0, "lossless transport must not drop");
    assert_eq!(rx.pop_batch(&mut popped, 16), 0, "stream fully drained");

    // Rebuild the expected stream and compare element-wise.
    let mut expected = Vec::with_capacity(expected_len);
    for i in 0..OPS {
        if i % 1000 == 999 {
            for k in 0..5 {
                expected.push(op((1 << 63) - 1 - k, true));
            }
        }
        expected.push(op(i * 64, i % 2 == 1));
    }
    assert_eq!(popped.len(), expected.len());
    assert_eq!(popped, expected);
}

/// Two-thread stress under count-and-drop: with a deliberately slow
/// consumer the ring drops, but what survives is an in-order subsequence
/// and the accounting balances exactly.
#[test]
fn two_thread_count_and_drop_survivors_are_an_ordered_subsequence() {
    const OPS: u64 = 100_000;
    let (mut tx, mut rx) = ring::<TraceOp>(1 << 6);
    let producer = std::thread::spawn(move || {
        let mut accepted = 0u64;
        for i in 0..OPS {
            if tx.push(op(i, i % 7 == 0)) {
                accepted += 1;
            }
        }
        (accepted, tx.dropped())
    });

    let mut popped = Vec::new();
    let producer = loop {
        rx.pop_batch(&mut popped, 32);
        if producer.is_finished() {
            break producer;
        }
    };
    while rx.pop_batch(&mut popped, 64) > 0 {}
    let (accepted, dropped) = producer.join().unwrap();

    assert_eq!(accepted + dropped, OPS, "every op accepted or counted");
    assert_eq!(popped.len() as u64, accepted, "every accepted op drained");
    // Addresses are the production index, so order-preservation and
    // subsequence-ness reduce to strict monotonicity + payload check.
    assert!(popped.windows(2).all(|w| w[0].addr < w[1].addr));
    assert!(popped.iter().all(|o| o.is_write == (o.addr % 7 == 0)));
}

/// The encoding layer itself: TraceOp and MetricRecord round-trip through
/// their word encodings for adversarial values. TraceOp packs the
/// read/write flag into bit 0, so its address space is 63 bits.
#[test]
fn ring_item_encodings_round_trip() {
    use rtr_trace::MetricRecord;
    for addr in [0u64, 1, (1 << 63) - 1, 0x4000_0000_0000_0000] {
        for is_write in [false, true] {
            let o = op(addr, is_write);
            let mut w = [0u64; TraceOp::WORDS];
            o.encode(&mut w);
            assert_eq!(TraceOp::decode(&w), o);
        }
    }
    let r = MetricRecord {
        id: u32::MAX,
        value: u64::MAX,
    };
    let mut w = [0u64; MetricRecord::WORDS];
    r.encode(&mut w);
    assert_eq!(MetricRecord::decode(&w), r);
}

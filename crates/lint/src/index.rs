//! Phase 1 of the interprocedural analysis: the workspace index.
//!
//! Every file is lexed **once** into a [`FileAnalysis`] — the scrubbed
//! text plus the full `fn`/`impl` item lists — and every rule (lexical
//! and interprocedural alike) is a filter over that shared result; no
//! rule re-lexes or re-walks items. On top of the per-file analyses the
//! [`WorkspaceIndex`] records every `fn` item in the workspace (crate,
//! name, receiver-type heuristic, body span) and every call site inside
//! each body (bare calls, method calls, `Self::`/path calls), which is
//! what the phase-2 fact propagation (`facts.rs`) and the call-graph
//! resolver (`callgraph.rs`) consume.
//!
//! The index is token-level and name-best-effort by design: it has no
//! type information, so resolution (see [`crate::callgraph`]) prefers
//! same-file and same-crate candidates and records everything it cannot
//! resolve as an external leaf. Approximation is acceptable because every
//! rule keeps the `// rtr-lint: allow` escape hatch.

use crate::lexer::{all_fns, all_impls, scrub, FnItem, ImplItem, Scrubbed, Span};

/// One lexed source file: the single shared product of the per-file lex.
#[derive(Debug)]
pub struct FileAnalysis {
    /// Workspace-relative path (selects which rules apply).
    pub path: String,
    /// Crate name under `crates/`, or empty.
    pub krate: String,
    /// `true` for `.rs` sources (manifests only join the `layering` rule).
    pub is_rust: bool,
    /// Scrubbed text + harvested allow annotations.
    pub scrubbed: Scrubbed,
    /// Every `fn` item with a body, in source order.
    pub fns: Vec<FnItem>,
    /// Every `impl` block, in source order.
    pub impls: Vec<ImplItem>,
}

impl FileAnalysis {
    /// Lexes `source` once; `path` must be workspace-relative.
    pub fn new(path: &str, source: &str) -> Self {
        let scrubbed = scrub(source);
        let is_rust = path.ends_with(".rs");
        let (fns, impls) = if is_rust {
            (all_fns(&scrubbed.text), all_impls(&scrubbed.text))
        } else {
            (Vec::new(), Vec::new())
        };
        FileAnalysis {
            path: path.to_owned(),
            krate: crate::rules::crate_of(path).unwrap_or("").to_owned(),
            is_rust,
            scrubbed,
            fns,
            impls,
        }
    }
}

/// Index of one `fn` item in [`WorkspaceIndex::fns`].
pub type FnId = usize;

/// One indexed function: where it lives and what it looks like.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Index into [`WorkspaceIndex::files`].
    pub file: usize,
    /// The function's name.
    pub name: String,
    /// Name of the implemented type when the `fn` sits inside an `impl`
    /// block (the receiver-type heuristic): `impl Foo` and
    /// `impl Trait for Foo` both yield `Foo`.
    pub impl_type: Option<String>,
    /// `true` when the first parameter is a `self` receiver.
    pub has_self: bool,
    /// Full item span in the file.
    pub span: Span,
    /// Offset of the body's opening brace.
    pub body_start: usize,
}

impl FnInfo {
    /// `Type::name` when inside an impl, bare `name` otherwise — how the
    /// function appears in call-chain evidence.
    pub fn qualified_name(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One call expression inside an indexed function's body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name (`helper`, `new`, `read`, …).
    pub name: String,
    /// Path qualifier for `Q::name(..)` calls (`Vec`, `Self`, a module).
    pub qualifier: Option<String>,
    /// `true` for `.name(..)` method calls.
    pub is_method: bool,
    /// For method calls, the identifier immediately left of the dot when
    /// there is one (`trace` in `trace.read(..)`, `producer` in
    /// `self.producer.push(..)`); `None` for computed receivers.
    pub receiver: Option<String>,
    /// Byte offset of the called name in the file's scrubbed text.
    pub offset: usize,
}

/// The whole-workspace function/call index.
#[derive(Debug)]
pub struct WorkspaceIndex {
    /// One entry per input file, in input order.
    pub files: Vec<FileAnalysis>,
    /// Every `fn` item across all files.
    pub fns: Vec<FnInfo>,
    /// `calls[f]` lists the call sites inside `fns[f]`'s body, in source
    /// order. Nested fns own their sites (innermost-span assignment).
    pub calls: Vec<Vec<CallSite>>,
}

/// Keywords and prelude constructors that look like calls but are not
/// workspace function calls.
const CALL_KEYWORDS: [&str; 20] = [
    "if", "while", "for", "match", "loop", "return", "in", "as", "move", "else", "let", "mut",
    "ref", "dyn", "fn", "use", "pub", "where", "break", "continue",
];

impl WorkspaceIndex {
    /// Builds the index over pre-lexed files.
    pub fn build(files: Vec<FileAnalysis>) -> Self {
        let mut fns = Vec::new();
        for (file_idx, file) in files.iter().enumerate() {
            for item in &file.fns {
                // The innermost impl block containing the fn names the
                // receiver type; free fns match no impl.
                let impl_type = file
                    .impls
                    .iter()
                    .filter(|imp| imp.span.contains(item.span.start))
                    .min_by_key(|imp| imp.span.end - imp.span.start)
                    .and_then(|imp| impl_type_of(&imp.header));
                fns.push(FnInfo {
                    file: file_idx,
                    name: item.name.clone(),
                    impl_type,
                    has_self: item.has_self,
                    span: item.span,
                    body_start: item.body_start,
                });
            }
        }
        let mut calls: Vec<Vec<CallSite>> = vec![Vec::new(); fns.len()];
        for (id, info) in fns.iter().enumerate() {
            let file = &files[info.file];
            // A nested fn's span lies inside its parent's; sites are
            // assigned to the innermost enclosing fn, so skip any offset
            // that a *smaller* fn span (ours excluded) also contains.
            let body = &file.scrubbed.text;
            for site in extract_calls(body, info.body_start, info.span.end) {
                let owned_by_nested = fns.iter().enumerate().any(|(other, o)| {
                    other != id
                        && o.file == info.file
                        && o.span.contains(site.offset)
                        && (o.span.end - o.span.start) < (info.span.end - info.span.start)
                });
                if !owned_by_nested {
                    calls[id].push(site);
                }
            }
        }
        WorkspaceIndex { files, fns, calls }
    }

    /// The impl type of the fn's enclosing impl block (resolves `Self::`).
    pub fn self_type_of(&self, f: FnId) -> Option<&str> {
        self.fns[f].impl_type.as_deref()
    }
}

/// Extracts the implemented type name from an impl header: the last path
/// segment of the type after `for` (trait impls) or after the generics
/// (inherent impls), with generic arguments stripped.
pub fn impl_type_of(header: &str) -> Option<String> {
    // Cut an optional where-clause, then skip leading generics.
    let header = header.split(" where ").next().unwrap_or(header);
    let mut rest = header.trim_start();
    if rest.starts_with('<') {
        rest = &rest[skip_angle_brackets(rest)..];
    }
    // Trait impl: the type follows the last top-level ` for `.
    if let Some(pos) = find_top_level_for(rest) {
        rest = &rest[pos + 5..];
    }
    let rest = rest
        .trim_start()
        .trim_start_matches('&')
        .trim_start_matches("dyn ")
        .trim_start();
    // Last `::` segment of the path, cut at `<`.
    let path = rest.split('<').next().unwrap_or(rest).trim();
    let segment = path.rsplit("::").next().unwrap_or(path).trim();
    let name: String = segment
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Byte offset one past the matching `>` for a string starting with `<`.
/// `->` inside `Fn(..) -> T` bounds does not count as a closer.
fn skip_angle_brackets(s: &str) -> usize {
    let bytes = s.as_bytes();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'<' => depth += 1,
            b'>' if i > 0 && bytes[i - 1] == b'-' => {}
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    s.len()
}

/// Offset of the last ` for ` outside angle brackets (the trait/type
/// separator; bounds like `T: Into<X> for` cannot appear there).
fn find_top_level_for(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut depth = 0i32;
    let mut found = None;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'<' => depth += 1,
            b'>' if i > 0 && bytes[i - 1] == b'-' => {}
            b'>' => depth -= 1,
            b' ' if depth == 0 && s[i..].starts_with(" for ") => found = Some(i + 1),
            _ => {}
        }
        i += 1;
    }
    found.map(|p| p - 1)
}

fn is_ident(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Scans `text[from..to]` (a fn body in scrubbed text) for call
/// expressions: an identifier followed by `(`, classified as bare, path
/// (`Q::name`), or method (`.name`). Macro invocations (`name!(`) and
/// nested `fn` definitions are skipped.
fn extract_calls(text: &str, from: usize, to: usize) -> Vec<CallSite> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = from;
    let to = to.min(bytes.len());
    while i < to {
        if !is_ident(bytes[i]) {
            i += 1;
            continue;
        }
        let start = i;
        while i < to && is_ident(bytes[i]) {
            i += 1;
        }
        // Numbers are not call names.
        if bytes[start].is_ascii_digit() {
            continue;
        }
        let name = &text[start..i];
        // Next significant char must be `(`; `!` marks a macro.
        let mut j = i;
        while j < to && (bytes[j] == b' ' || bytes[j] == b'\n' || bytes[j] == b'\r') {
            j += 1;
        }
        if j >= to || bytes[j] != b'(' {
            continue;
        }
        if CALL_KEYWORDS.contains(&name) {
            continue;
        }
        // Preceding context decides the call kind.
        let mut p = start;
        while p > 0 && (bytes[p - 1] == b' ' || bytes[p - 1] == b'\n' || bytes[p - 1] == b'\r') {
            p -= 1;
        }
        // `fn name(` is a definition, not a call.
        if p >= 2 && &text[p - 2..p] == "fn" && (p < 3 || !is_ident(bytes[p - 3])) {
            continue;
        }
        let (qualifier, is_method, receiver) = if p >= 2 && &text[p - 2..p] == "::" {
            let q_end = p - 2;
            let mut q_start = q_end;
            while q_start > 0 && is_ident(bytes[q_start - 1]) {
                q_start -= 1;
            }
            if q_start == q_end {
                // `<T as Trait>::name` or similar: treat as unqualified
                // external (no resolution).
                (Some(String::new()), false, None)
            } else {
                (Some(text[q_start..q_end].to_owned()), false, None)
            }
        } else if p >= 1 && bytes[p - 1] == b'.' {
            let r_end = p - 1;
            let mut r_start = r_end;
            while r_start > 0 && is_ident(bytes[r_start - 1]) {
                r_start -= 1;
            }
            let receiver = (r_start < r_end).then(|| text[r_start..r_end].to_owned());
            (None, true, receiver)
        } else {
            (None, false, None)
        };
        out.push(CallSite {
            name: name.to_owned(),
            qualifier,
            is_method,
            receiver,
            offset: start,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_one(path: &str, src: &str) -> WorkspaceIndex {
        WorkspaceIndex::build(vec![FileAnalysis::new(path, src)])
    }

    #[test]
    fn fns_get_impl_types_and_self_flags() {
        let src = "impl<T: MemTrace> Workspace<T> {\n  pub fn new() -> Self { Self { v: 0 } }\n  fn step(&mut self, x: u32) { helper(x); }\n}\nfn helper(x: u32) { }\n";
        let idx = index_one("crates/linalg/src/x.rs", src);
        assert_eq!(idx.fns.len(), 3);
        assert_eq!(idx.fns[0].impl_type.as_deref(), Some("Workspace"));
        assert!(!idx.fns[0].has_self);
        assert!(idx.fns[1].has_self);
        assert_eq!(idx.fns[2].impl_type, None);
        assert_eq!(idx.fns[1].qualified_name(), "Workspace::step");
    }

    #[test]
    fn trait_impl_header_yields_the_implemented_type() {
        assert_eq!(
            impl_type_of("<T: MemTrace + ?Sized> MemTrace for SharedTrace<'_, T>").as_deref(),
            Some("SharedTrace")
        );
        assert_eq!(impl_type_of(" IcpScratch ").as_deref(), Some("IcpScratch"));
        assert_eq!(
            impl_type_of("<F: Fn(usize) -> u64> Apply for Holder<F>").as_deref(),
            Some("Holder")
        );
        assert_eq!(
            impl_type_of(" std::fmt::Display for Finding ").as_deref(),
            Some("Finding")
        );
    }

    #[test]
    fn calls_are_classified_by_kind() {
        let src = "fn outer(v: &mut Vec<u32>) {\n  helper(1);\n  Vec::new();\n  Self::reset();\n  v.push(2);\n  self.trace.read(3);\n  vec![4];\n  mod_a::free(5);\n}\n";
        let idx = index_one("crates/geom/src/x.rs", src);
        let calls = &idx.calls[0];
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["helper", "new", "reset", "push", "read", "free"]);
        assert_eq!(calls[1].qualifier.as_deref(), Some("Vec"));
        assert_eq!(calls[2].qualifier.as_deref(), Some("Self"));
        assert!(calls[3].is_method);
        assert_eq!(calls[3].receiver.as_deref(), Some("v"));
        assert_eq!(calls[4].receiver.as_deref(), Some("trace"));
        assert_eq!(calls[5].qualifier.as_deref(), Some("mod_a"));
    }

    #[test]
    fn nested_fn_owns_its_call_sites() {
        let src =
            "fn outer() {\n  fn inner() { leaf(); }\n  top();\n}\nfn leaf() {}\nfn top() {}\n";
        let idx = index_one("crates/geom/src/x.rs", src);
        let outer = idx.fns.iter().position(|f| f.name == "outer").unwrap();
        let inner = idx.fns.iter().position(|f| f.name == "inner").unwrap();
        let outer_names: Vec<&str> = idx.calls[outer].iter().map(|c| c.name.as_str()).collect();
        let inner_names: Vec<&str> = idx.calls[inner].iter().map(|c| c.name.as_str()).collect();
        assert_eq!(outer_names, ["top"]);
        assert_eq!(inner_names, ["leaf"]);
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let src =
            "fn f(x: bool) { if (x) { vec![1]; println!(\"{}\", 2); } match (x) { _ => {} } }\n";
        let idx = index_one("crates/geom/src/x.rs", src);
        assert!(idx.calls[0].is_empty(), "{:?}", idx.calls[0]);
    }
}

//! Findings, the `LINT_report.json` document, and a minimal JSON
//! writer/parser pair (the suite builds offline — no serde).

use std::fmt;

/// One rule violation (possibly suppressed by an allow annotation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier, e.g. `wall-clock`.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// `Some(reason)` when an `rtr-lint: allow` annotation covers the
    /// finding; such findings are reported but never fail `--deny`.
    pub allowed: Option<String>,
    /// For transitive findings, the offending call chain from the hot
    /// entry point down to the seeding token
    /// (`["a_into", "helper", "Vec::new"]`); empty for lexical findings.
    pub chain: Vec<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.allowed {
            Some(reason) => write!(
                f,
                "{}:{}: [{}] {} (allowed: {})",
                self.file, self.line, self.rule, self.message, reason
            ),
            None => write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.message
            ),
        }
    }
}

/// The whole lint run, serialized to `LINT_report.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Report format version.
    pub version: u64,
    /// Number of files scanned.
    pub files_scanned: u64,
    /// Wall time of the lint pass in milliseconds. Volatile between
    /// runs: the `--baseline` comparison strips it (see `main.rs`), so
    /// it never invalidates the committed baseline.
    pub elapsed_ms: u64,
    /// Every finding, violations and allowed ones alike.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Findings not covered by an allow annotation — what `--deny` gates
    /// on.
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.allowed.is_none())
    }

    /// Findings suppressed by an allow annotation.
    pub fn allowed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.allowed.is_some())
    }

    /// Per-rule `(rule, violations, allowed)` counts over every known
    /// rule (plus the `allow-syntax` meta rule), zero-count rules
    /// included — the summary block doubles as coverage evidence: a rule
    /// silently vanishing from the engine would change the baseline.
    pub fn rule_summary(&self) -> Vec<(&'static str, usize, usize)> {
        crate::rules::RULES
            .iter()
            .copied()
            .chain(std::iter::once("allow-syntax"))
            .map(|rule| {
                let viol = self.violations().filter(|f| f.rule == rule).count();
                let allow = self.allowed().filter(|f| f.rule == rule).count();
                (rule, viol, allow)
            })
            .collect()
    }

    /// Serializes the report to its canonical JSON form.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {},\n", self.version));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"elapsed_ms\": {},\n", self.elapsed_ms));
        out.push_str(&format!(
            "  \"violations\": {},\n",
            self.violations().count()
        ));
        out.push_str(&format!("  \"allowed\": {},\n", self.allowed().count()));
        out.push_str("  \"rules\": [\n");
        let summary = self.rule_summary();
        for (i, (rule, viol, allow)) in summary.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"violations\": {viol}, \"allowed\": {allow}}}{}\n",
                json_string(rule),
                if i + 1 < summary.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", json_string(&f.rule)));
            out.push_str(&format!("\"file\": {}, ", json_string(&f.file)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"message\": {}, ", json_string(&f.message)));
            if !f.chain.is_empty() {
                let links: Vec<String> = f.chain.iter().map(|c| json_string(c)).collect();
                out.push_str(&format!("\"chain\": [{}], ", links.join(", ")));
            }
            match &f.allowed {
                Some(r) => out.push_str(&format!("\"allowed\": {}", json_string(r))),
                None => out.push_str("\"allowed\": null"),
            }
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a report back from JSON (the round-trip inverse of
    /// [`Report::to_json`]).
    pub fn from_json(text: &str) -> Result<Report, String> {
        let value = Json::parse(text)?;
        let obj = value.as_object().ok_or("report must be a JSON object")?;
        let version = get_u64(obj, "version")?;
        let files_scanned = get_u64(obj, "files_scanned")?;
        // Reports older than version 2 predate the timing field.
        let elapsed_ms = get_u64(obj, "elapsed_ms").unwrap_or(0);
        let findings_value = field(obj, "findings")?;
        let Json::Array(items) = findings_value else {
            return Err("\"findings\" must be an array".to_owned());
        };
        let mut findings = Vec::with_capacity(items.len());
        for item in items {
            let o = item.as_object().ok_or("finding must be an object")?;
            findings.push(Finding {
                rule: get_string(o, "rule")?,
                file: get_string(o, "file")?,
                line: get_u64(o, "line")? as usize,
                message: get_string(o, "message")?,
                allowed: match field(o, "allowed")? {
                    Json::Null => None,
                    Json::String(s) => Some(s.clone()),
                    _ => return Err("\"allowed\" must be a string or null".to_owned()),
                },
                chain: match field(o, "chain") {
                    Err(_) => Vec::new(),
                    Ok(Json::Array(items)) => items
                        .iter()
                        .map(|v| match v {
                            Json::String(s) => Ok(s.clone()),
                            _ => Err("\"chain\" entries must be strings".to_owned()),
                        })
                        .collect::<Result<Vec<String>, String>>()?,
                    Ok(_) => return Err("\"chain\" must be an array".to_owned()),
                },
            });
        }
        Ok(Report {
            version,
            files_scanned,
            elapsed_ms,
            findings,
        })
    }
}

fn field<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn get_u64(obj: &[(String, Json)], key: &str) -> Result<u64, String> {
    match field(obj, key)? {
        Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
        _ => Err(format!("field {key:?} must be a non-negative integer")),
    }
}

fn get_string(obj: &[(String, Json)], key: &str) -> Result<String, String> {
    match field(obj, key)? {
        Json::String(s) => Ok(s.clone()),
        _ => Err(format!("field {key:?} must be a string")),
    }
}

/// Escapes and quotes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal JSON value, sufficient for the report format.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// The object fields when the value is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parses a JSON document (recursive descent, no extensions).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(text, bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && (bytes[*pos] as char).is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, pos))
    }
}

fn parse_value(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(text, bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(text, bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(text, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::String(parse_string(text, bytes, pos)?)),
        Some(b'n') if text[*pos..].starts_with("null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(b't') if text[*pos..].starts_with("true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if text[*pos..].starts_with("false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            text[start..*pos]
                .parse::<f64>()
                .map(Json::Number)
                .map_err(|e| format!("bad number at byte {start}: {e}"))
        }
        None => Err("unexpected end of input".to_owned()),
    }
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = text.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one full UTF-8 char.
                let c = text[*pos..].chars().next().ok_or("bad UTF-8")?;
                out.push(c);
                *pos += c.len_utf8();
            }
            None => return Err("unterminated string".to_owned()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            version: 2,
            files_scanned: 42,
            elapsed_ms: 17,
            findings: vec![
                Finding {
                    rule: "wall-clock".to_owned(),
                    file: "crates/planning/src/rrtstar.rs".to_owned(),
                    line: 105,
                    message: "Instant::now in a kernel crate".to_owned(),
                    allowed: None,
                    chain: vec![
                        "plan_into".to_owned(),
                        "stamp".to_owned(),
                        "Instant::now".to_owned(),
                    ],
                },
                Finding {
                    rule: "nondet-iter".to_owned(),
                    file: "crates/planning/src/search.rs".to_owned(),
                    line: 152,
                    message: "HashMap \"quoted\" and \\ escaped".to_owned(),
                    allowed: Some("keyed lookups only".to_owned()),
                    chain: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn report_round_trips() {
        let report = sample();
        let json = report.to_json();
        let parsed = Report::from_json(&json).unwrap();
        assert_eq!(parsed, report);
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn empty_report_round_trips() {
        let report = Report {
            version: 2,
            files_scanned: 0,
            elapsed_ms: 0,
            findings: vec![],
        };
        let parsed = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn violation_and_allowed_counts() {
        let r = sample();
        assert_eq!(r.violations().count(), 1);
        assert_eq!(r.allowed().count(), 1);
        let json = r.to_json();
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains("\"allowed\": 1"));
        assert!(json.contains("\"elapsed_ms\": 17"));
    }

    #[test]
    fn summary_covers_every_rule_including_zero_counts() {
        let r = sample();
        let summary = r.rule_summary();
        assert_eq!(summary.len(), crate::rules::RULES.len() + 1);
        let wall = summary
            .iter()
            .find(|(rule, _, _)| *rule == "wall-clock")
            .unwrap();
        assert_eq!((wall.1, wall.2), (1, 0));
        let hot = summary
            .iter()
            .find(|(rule, _, _)| *rule == "hot-alloc")
            .unwrap();
        assert_eq!((hot.1, hot.2), (0, 0));
        let json = r.to_json();
        assert!(json.contains("{\"rule\": \"trace-gated\", \"violations\": 0, \"allowed\": 0}"));
    }

    #[test]
    fn chain_round_trips_and_is_omitted_when_empty() {
        let r = sample();
        let json = r.to_json();
        assert!(json.contains("\"chain\": [\"plan_into\", \"stamp\", \"Instant::now\"]"));
        // The chain-free finding's object carries no chain key.
        let nondet_obj = json.lines().find(|l| l.contains("nondet-iter")).unwrap();
        assert!(!nondet_obj.contains("chain"));
        assert_eq!(Report::from_json(&json).unwrap(), r);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Report::from_json("{\"version\": 1").is_err());
        assert!(Report::from_json("[]").is_err());
        assert!(Json::parse("{\"a\": 1} x").is_err());
    }

    #[test]
    fn json_escapes_survive() {
        let v = Json::parse("\"a\\n\\\"b\\\\c\\u0041\"").unwrap();
        assert_eq!(v, Json::String("a\n\"b\\cA".to_owned()));
    }
}

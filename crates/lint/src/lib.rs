//! `rtr-lint`: workspace invariant checker for the RTRBench suite.
//!
//! Statically enforces the determinism and allocation-free contracts
//! recorded in `ROADMAP.md`, using a purpose-built lexical scrubber
//! (no external parser dependencies — the build stays offline):
//!
//! - **R1 `nondet-iter`** — `HashMap`/`HashSet` are flagged in kernel
//!   crates, where iteration order could reach benchmark outputs.
//! - **R2 `wall-clock`** — `Instant::now`/`SystemTime` belong to the
//!   `harness`/`bench` crates only; kernels must not read the clock.
//! - **R3 `hot-alloc`** — inside `*_into` functions and `*Scratch`
//!   impls, heap allocation (`Vec::new`, `vec![`, `.to_vec()`,
//!   `.collect()`, `Box::new`, `.clone()`) is forbidden.
//! - **R4 `unsafe-hygiene`** — crate roots carry
//!   `#![forbid(unsafe_code)]`; any future `unsafe` block needs a
//!   `// SAFETY:` comment.
//! - **R5 `par-rng`** — closures passed to `par_map`/`par_chunks_mut`
//!   may only derive RNG state via `chunk_seed`.
//! - **R6 `layering`** — the algorithm crates (and the kernel-adapter
//!   subtree of `core`) never name `rtr_archsim`, in source or manifest:
//!   kernels emit into the `MemTrace` sink and the simulator is wired up
//!   once in `crates/core/src/trace.rs`.
//! - **R7 `atomic-ordering`** — every memory-ordering token in the
//!   lock-free files (`trace/src/ring.rs`, `trace/src/sync.rs`,
//!   `harness/src/collector.rs`) sits in a fn carrying a `// ORDERING:`
//!   rationale comment; `Ordering::SeqCst` is deny-by-default.
//! - **R8 `trace-gated`** — kernel `MemTrace` emissions are dominated by
//!   a `trace.enabled()` check, lexically or through the call graph.
//!
//! Beyond the per-file lexical pass, the engine is *interprocedural*:
//! [`index`] builds a workspace-wide fn/call index over the lexer's
//! token stream (every file is lexed exactly once), [`callgraph`]
//! resolves call sites name-best-effort within the workspace, and
//! [`facts`] propagates `allocates` / `reads-clock` /
//! `touches-nondet-iter` facts to a fixpoint — so `hot-alloc` and
//! `wall-clock` fire on hot entry points whose *callees* violate the
//! contract, with the offending call chain attached to the finding.
//!
//! Findings can be suppressed with an annotation carrying a written
//! reason:
//!
//! ```text
//! // rtr-lint: allow(nondet-iter) -- keyed lookups only, never iterated
//! ```
//!
//! The annotation covers its own line and the next non-attribute line
//! below it. A malformed annotation (unknown rule, missing `-- reason`)
//! is itself reported as an `allow-syntax` finding that cannot be
//! allowed.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod facts;
pub mod index;
pub mod lexer;
pub mod report;
pub mod rules;

pub use callgraph::CallGraph;
pub use facts::{Facts, Seeds};
pub use index::{FileAnalysis, WorkspaceIndex};
pub use lexer::{scrub, Allow, Scrubbed, Span};
pub use report::{Finding, Json, Report};
pub use rules::{
    crate_of, explain, is_layered, lint_source, lint_workspace, CLOCK_CRATES, KERNEL_CRATES,
    LAYERED_CRATES, RULES,
};

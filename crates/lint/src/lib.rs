//! `rtr-lint`: workspace invariant checker for the RTRBench suite.
//!
//! Statically enforces the determinism and allocation-free contracts
//! recorded in `ROADMAP.md`, using a purpose-built lexical scrubber
//! (no external parser dependencies — the build stays offline):
//!
//! - **R1 `nondet-iter`** — `HashMap`/`HashSet` are flagged in kernel
//!   crates, where iteration order could reach benchmark outputs.
//! - **R2 `wall-clock`** — `Instant::now`/`SystemTime` belong to the
//!   `harness`/`bench` crates only; kernels must not read the clock.
//! - **R3 `hot-alloc`** — inside `*_into` functions and `*Scratch`
//!   impls, heap allocation (`Vec::new`, `vec![`, `.to_vec()`,
//!   `.collect()`, `Box::new`, `.clone()`) is forbidden.
//! - **R4 `unsafe-hygiene`** — crate roots carry
//!   `#![forbid(unsafe_code)]`; any future `unsafe` block needs a
//!   `// SAFETY:` comment.
//! - **R5 `par-rng`** — closures passed to `par_map`/`par_chunks_mut`
//!   may only derive RNG state via `chunk_seed`.
//! - **R6 `layering`** — the algorithm crates (and the kernel-adapter
//!   subtree of `core`) never name `rtr_archsim`, in source or manifest:
//!   kernels emit into the `MemTrace` sink and the simulator is wired up
//!   once in `crates/core/src/trace.rs`.
//!
//! Findings can be suppressed with an annotation carrying a written
//! reason:
//!
//! ```text
//! // rtr-lint: allow(nondet-iter) -- keyed lookups only, never iterated
//! ```
//!
//! The annotation covers its own line and the following line. A
//! malformed annotation (unknown rule, missing `-- reason`) is itself
//! reported as an `allow-syntax` finding that cannot be allowed.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod report;
pub mod rules;

pub use lexer::{scrub, Allow, Scrubbed, Span};
pub use report::{Finding, Json, Report};
pub use rules::{
    crate_of, is_layered, lint_source, CLOCK_CRATES, KERNEL_CRATES, LAYERED_CRATES, RULES,
};

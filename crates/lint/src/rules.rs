//! The rule engine: six lexical rules, each the static form of a
//! ROADMAP contract, plus the `allow-syntax` meta rule.
//!
//! | id | contract |
//! |------------------|-----------------------------------------------|
//! | `nondet-iter`    | kernel outputs never depend on hash iteration |
//! | `wall-clock`     | kernels never read the wall clock directly; collector `consume_batch` callbacks never do, even in the measurement crates |
//! | `hot-alloc`      | `*_into` / `process_batch` / `flush` / ring-producer (`push`/`push_batch`/`publish`) / `*Scratch` steady state is heap-free |
//! | `unsafe-hygiene` | crate roots forbid `unsafe`; opt-outs justify |
//! | `par-rng`        | parallel closures derive RNG via `chunk_seed` |
//! | `layering`       | kernel-layer code never names the cache simulator |
//!
//! Rules are scoped by crate (see [`crate_of`]): `nondet-iter` guards the
//! kernel crates, `wall-clock` everything except the measurement crates
//! (`harness`, `bench`) — where only `consume_batch` spans are scanned —
//! `layering` the algorithm crates plus the adapter subtree in `core`
//! (see [`is_layered`]), the rest the whole workspace.

use crate::lexer::{
    fn_spans, impl_spans, line_of, matching_delim, scrub, token_positions, Scrubbed, Span,
};
use crate::report::Finding;

/// Crates whose outputs are benchmark kernel results: hash-iteration
/// order must never reach them (ROADMAP determinism contract).
pub const KERNEL_CRATES: [&str; 6] = ["control", "core", "geom", "perception", "planning", "sim"];

/// Crates that own measurement: the only places wall-clock reads live.
pub const CLOCK_CRATES: [&str; 2] = ["bench", "harness"];

/// Crates whose algorithm code is generic over the `MemTrace` sink and
/// must never name the cache simulator directly (PR 5 layering
/// inversion); `crates/core/src/kernels/` joins them via [`is_layered`].
pub const LAYERED_CRATES: [&str; 5] = ["control", "geom", "perception", "planning", "sim"];

/// Crates that may carry `unsafe` code at all — only the SIMD crate's
/// optional `core::arch` intrinsics backend. Allowlisted crate roots may
/// replace the unconditional `#![forbid(unsafe_code)]` with the
/// feature-gated `#![cfg_attr(not(feature = "..."), forbid(unsafe_code))]`
/// form; every `unsafe` block there still needs its `// SAFETY:` line.
/// Everywhere else an `unsafe` token is itself a finding, SAFETY comment
/// or not.
pub const UNSAFE_ALLOWLIST: [&str; 1] = ["simd"];

/// Lane-kernel entry points in `crates/simd` whose bodies `hot-alloc`
/// scans like any `*_into` span: the SoA fast paths sit inside kernel
/// inner loops and must be allocation-free.
pub const SIMD_HOT_FNS: [&str; 9] = [
    "sum",
    "sum_sq",
    "dot",
    "axpy",
    "axpy4",
    "div_assign",
    "squared_distances",
    "squared_distances_dyn",
    "combine_tail",
];

/// Ring-producer entry points in `crates/trace` whose bodies `hot-alloc`
/// scans like any `*_into` span: they run once per telemetry record (or
/// per batch) on the kernel's hot thread, and the transport's whole
/// point is that this path never touches the allocator.
pub const RING_HOT_FNS: [&str; 8] = [
    "push",
    "try_push",
    "push_batch",
    "try_push_batch",
    "publish",
    // RingTrace's amortized fast/slow split and the producer internals
    // they lean on run on the same hot thread as the entry points.
    "push_unpublished",
    "push_slow",
    "refresh_free",
];

/// All rule identifiers, as used in `allow(<rule>)` annotations.
pub const RULES: [&str; 6] = [
    "nondet-iter",
    "wall-clock",
    "hot-alloc",
    "unsafe-hygiene",
    "par-rng",
    "layering",
];

/// Extracts the crate name from a workspace-relative path like
/// `crates/planning/src/rrtstar.rs`.
pub fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// Returns `true` when `path` belongs to the simulator-agnostic layer:
/// the algorithm crates ([`LAYERED_CRATES`], sources and manifest alike)
/// plus the kernel-adapter subtree of `core`. The only `core` module
/// allowed to name `rtr_archsim` is `src/trace.rs`, which owns the
/// `--trace` wiring.
pub fn is_layered(path: &str) -> bool {
    crate_of(path).is_some_and(|k| LAYERED_CRATES.contains(&k))
        || path.starts_with("crates/core/src/kernels/")
}

/// Returns `true` when `path` is a crate root (`src/lib.rs` or
/// `src/main.rs` of a workspace crate), where `unsafe-hygiene` demands
/// `#![forbid(unsafe_code)]`.
pub fn is_crate_root(path: &str) -> bool {
    crate_of(path).is_some() && (path.ends_with("/src/lib.rs") || path.ends_with("/src/main.rs"))
}

/// Lints one file. `path` must be workspace-relative (it selects which
/// rules apply); `source` is the file text. Returns findings with allow
/// suppression already applied.
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    let scrubbed = scrub(source);
    let krate = crate_of(path).unwrap_or("");
    let mut raw: Vec<Finding> = Vec::new();

    // Manifests (`Cargo.toml`) only participate in the layering rule;
    // the Rust-syntax rules read `.rs` files.
    let is_rust = path.ends_with(".rs");
    if is_rust {
        if KERNEL_CRATES.contains(&krate) {
            rule_nondet_iter(path, &scrubbed, &mut raw);
        }
        if !CLOCK_CRATES.contains(&krate) {
            rule_wall_clock(path, &scrubbed, &mut raw);
        } else {
            rule_wall_clock_consumer(path, &scrubbed, &mut raw);
        }
        rule_hot_alloc(path, &scrubbed, &mut raw);
        rule_unsafe_hygiene(path, &scrubbed, &mut raw);
        rule_par_rng(path, &scrubbed, &mut raw);
    }
    if is_layered(path) {
        rule_layering(path, &scrubbed, &mut raw);
    }

    // Dedup overlapping-span double reports, then sort by line.
    raw.sort_by(|a, b| (a.line, &a.rule, &a.message).cmp(&(b.line, &b.rule, &b.message)));
    raw.dedup_by(|a, b| a.line == b.line && a.rule == b.rule && a.message == b.message);

    apply_allows(path, &scrubbed, raw)
}

/// Marks findings covered by an allow annotation (same line or the line
/// below the annotation) and emits `allow-syntax` findings for
/// annotations that name an unknown rule or omit the `-- <reason>`.
fn apply_allows(path: &str, scrubbed: &Scrubbed, mut findings: Vec<Finding>) -> Vec<Finding> {
    for allow in &scrubbed.allows {
        if allow.reason.is_empty() {
            findings.push(Finding {
                rule: "allow-syntax".to_owned(),
                file: path.to_owned(),
                line: allow.line,
                message: format!(
                    "allow({}) annotation is missing its `-- <reason>` justification",
                    allow.rule
                ),
                allowed: None,
            });
            continue;
        }
        if !RULES.contains(&allow.rule.as_str()) {
            findings.push(Finding {
                rule: "allow-syntax".to_owned(),
                file: path.to_owned(),
                line: allow.line,
                message: format!("allow({}) names an unknown rule", allow.rule),
                allowed: None,
            });
            continue;
        }
        for finding in &mut findings {
            if finding.rule == allow.rule
                && (finding.line == allow.line || finding.line == allow.line + 1)
            {
                finding.allowed = Some(allow.reason.clone());
            }
        }
    }
    findings.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    findings
}

fn push(
    out: &mut Vec<Finding>,
    rule: &str,
    path: &str,
    text: &str,
    offset: usize,
    message: String,
) {
    out.push(Finding {
        rule: rule.to_owned(),
        file: path.to_owned(),
        line: line_of(text, offset),
        message,
        allowed: None,
    });
}

/// R1 — `nondet-iter`: `HashMap`/`HashSet` in a kernel crate. Hash-seed
/// randomization makes their iteration order differ run to run; any
/// kernel-crate use must either switch to `BTreeMap`/`BTreeSet` or carry
/// an allow annotation proving the map is never iterated.
fn rule_nondet_iter(path: &str, s: &Scrubbed, out: &mut Vec<Finding>) {
    for token in ["HashMap", "HashSet"] {
        for at in token_positions(&s.text, token) {
            push(
                out,
                "nondet-iter",
                path,
                &s.text,
                at,
                format!("{token} in kernel crate: iteration order is nondeterministic (use BTreeMap/BTreeSet or justify with an allow)"),
            );
        }
    }
}

/// R2 — `wall-clock`: `Instant::now` / `SystemTime` outside
/// `harness`/`bench`. Kernels must take timing through the harness
/// profiler hooks (`Profiler::hot_start`/`hot_add`, `Profiler::span`,
/// `HotRegion`), which the measurement knob can turn off.
fn rule_wall_clock(path: &str, s: &Scrubbed, out: &mut Vec<Finding>) {
    for needle in ["Instant::now", "SystemTime"] {
        for at in token_positions(&s.text, needle) {
            push(
                out,
                "wall-clock",
                path,
                &s.text,
                at,
                format!(
                    "{needle} in a kernel crate: route timing through the harness profiler hooks"
                ),
            );
        }
    }
}

/// R2b — `wall-clock` inside the measurement crates: the crates are
/// exempt as a whole (they own timing), but `consume_batch` bodies are
/// not — a `RingConsumer` callback runs on the collector thread, where
/// the telemetry contract is "producer times, collector aggregates". A
/// clock read there would silently re-time records that were already
/// timed at the source.
fn rule_wall_clock_consumer(path: &str, s: &Scrubbed, out: &mut Vec<Finding>) {
    for (_, span) in fn_spans(&s.text, |n| n == "consume_batch") {
        let body = &s.text[span.start..span.end];
        for needle in ["Instant::now", "SystemTime"] {
            for rel in token_positions(body, needle) {
                push(
                    out,
                    "wall-clock",
                    path,
                    &s.text,
                    span.start + rel,
                    format!(
                        "{needle} inside a consume_batch collector callback: \
                         timing belongs to the producer side of the ring"
                    ),
                );
            }
        }
    }
}

/// Heap-allocating expressions forbidden inside hot spans. Each entry is
/// `(needle, ident_boundary_matters)` — dotted needles carry their own
/// boundary.
const ALLOC_NEEDLES: [&str; 7] = [
    "Vec::new",
    "vec!",
    ".to_vec()",
    ".collect()",
    ".collect::",
    "Box::new",
    ".clone()",
];

/// R3 — `hot-alloc`: allocation inside the span of a `*_into` function,
/// a `process_batch`/`flush` function (the batched trace transport: one
/// of these runs per buffer flush on every traced access stream), a
/// ring-producer entry point in `crates/trace` ([`RING_HOT_FNS`]: the
/// telemetry publish path runs on the kernel's hot thread), or a
/// `*Scratch` impl. Constructors (`fn new`, `fn default`, `fn with_*`)
/// inside Scratch impls are exempt: warmup may allocate, steady state may
/// not (ROADMAP workspace convention).
fn rule_hot_alloc(path: &str, s: &Scrubbed, out: &mut Vec<Finding>) {
    // In the SIMD crate the lane-kernel entry points (and their
    // `_scalar`/`_lanes` twins) are hot spans too; in the trace crate,
    // the ring-producer entry points.
    let simd_crate = crate_of(path) == Some("simd");
    let trace_crate = crate_of(path) == Some("trace");
    let mut hot: Vec<Span> = fn_spans(&s.text, |n| {
        n.ends_with("_into")
            || n == "process_batch"
            || n == "flush"
            || (trace_crate && RING_HOT_FNS.contains(&n))
            || (simd_crate
                && (SIMD_HOT_FNS.contains(&n) || n.ends_with("_scalar") || n.ends_with("_lanes")))
    })
    .into_iter()
    .map(|(_, span)| span)
    .collect();
    let scratch_impls = impl_spans(&s.text, |header| {
        header
            .split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
            .any(|word| word.ends_with("Scratch") && !word.is_empty())
    });
    // Constructor sub-spans are exempt from the Scratch-impl scan.
    let mut exempt: Vec<Span> = Vec::new();
    for imp in &scratch_impls {
        let body = &s.text[imp.start..imp.end];
        for (_, span) in fn_spans(body, |n| {
            n == "new" || n == "default" || n.starts_with("with_")
        }) {
            exempt.push(Span {
                start: imp.start + span.start,
                end: imp.start + span.end,
            });
        }
        hot.push(*imp);
    }

    for span in &hot {
        let body = &s.text[span.start..span.end];
        for needle in ALLOC_NEEDLES {
            let hits = if needle.starts_with('.') || needle.ends_with('!') {
                find_all(body, needle)
            } else {
                token_positions(body, needle)
            };
            for rel in hits {
                let at = span.start + rel;
                if exempt.iter().any(|e| e.contains(at)) {
                    continue;
                }
                push(
                    out,
                    "hot-alloc",
                    path,
                    &s.text,
                    at,
                    format!(
                        "{needle} inside an allocation-free hot span \
                         (*_into/process_batch/flush fn or *Scratch impl)"
                    ),
                );
            }
        }
    }
}

/// Plain substring occurrences (for dotted/macro needles that carry their
/// own boundary characters).
fn find_all(text: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = text[from..].find(needle) {
        out.push(from + pos);
        from += pos + needle.len();
    }
    out
}

/// R4 — `unsafe-hygiene`: every crate root carries
/// `#![forbid(unsafe_code)]`, and any `unsafe` token outside the
/// [`UNSAFE_ALLOWLIST`] is a finding outright. Allowlisted crates (the
/// SIMD intrinsics backend) may gate the forbid behind a feature via
/// `#![cfg_attr(..., forbid(unsafe_code))]`, but every `unsafe` block
/// there still needs a `// SAFETY:` comment on its own or the preceding
/// line.
fn rule_unsafe_hygiene(path: &str, s: &Scrubbed, out: &mut Vec<Finding>) {
    let allowlisted = crate_of(path).is_some_and(|k| UNSAFE_ALLOWLIST.contains(&k));
    if is_crate_root(path) {
        let compact: String = s.text.chars().filter(|c| !c.is_whitespace()).collect();
        let unconditional = compact.contains("#![forbid(unsafe_code)]");
        let feature_gated =
            compact.contains("#![cfg_attr(") && compact.contains(",forbid(unsafe_code))]");
        if !(unconditional || (allowlisted && feature_gated)) {
            out.push(Finding {
                rule: "unsafe-hygiene".to_owned(),
                file: path.to_owned(),
                line: 1,
                message: "crate root is missing #![forbid(unsafe_code)]".to_owned(),
                allowed: None,
            });
        }
    }
    let lines: Vec<&str> = s.original.lines().collect();
    for at in token_positions(&s.text, "unsafe") {
        if !allowlisted {
            push(
                out,
                "unsafe-hygiene",
                path,
                &s.text,
                at,
                "unsafe outside the allowlist (only the rtr-simd intrinsics backend may carry unsafe code)".to_owned(),
            );
            continue;
        }
        let line = line_of(&s.text, at);
        let documented = [line, line.saturating_sub(1)]
            .iter()
            .filter(|&&l| l >= 1)
            .any(|&l| lines.get(l - 1).is_some_and(|t| t.contains("SAFETY:")));
        if !documented {
            push(
                out,
                "unsafe-hygiene",
                path,
                &s.text,
                at,
                "unsafe without a // SAFETY: comment on the same or preceding line".to_owned(),
            );
        }
    }
}

/// R5 — `par-rng`: inside the argument span of a
/// `par_map(...)`/`par_chunks_mut(...)` call, RNG state may only be
/// derived via `chunk_seed` (ROADMAP threading contract: per-chunk seed
/// streams keep parallel runs bit-identical at any thread count).
fn rule_par_rng(path: &str, s: &Scrubbed, out: &mut Vec<Finding>) {
    let bytes = s.text.as_bytes();
    for entry in ["par_map", "par_chunks_mut"] {
        for at in token_positions(&s.text, entry) {
            // Find the call's opening paren.
            let mut j = at + entry.len();
            while j < bytes.len() && (bytes[j] == b' ' || bytes[j] == b'\n' || bytes[j] == b'\r') {
                j += 1;
            }
            if j >= bytes.len() || bytes[j] != b'(' {
                continue;
            }
            let Some(close) = matching_delim(&s.text, j, b'(', b')') else {
                continue;
            };
            let call = &s.text[j..close];
            for ctor in ["seed_from", "thread_rng", "from_entropy"] {
                for rel in token_positions(call, ctor) {
                    // The constructor's own argument span may launder the
                    // seed through `chunk_seed` — that is the contract.
                    let abs = j + rel;
                    let arg_open = abs + ctor.len();
                    let justified = bytes.get(arg_open) == Some(&b'(')
                        && matching_delim(&s.text, arg_open, b'(', b')')
                            .is_some_and(|end| s.text[arg_open..end].contains("chunk_seed"));
                    if !justified {
                        push(
                            out,
                            "par-rng",
                            path,
                            &s.text,
                            abs,
                            format!("{ctor} inside a {entry} closure must derive its seed via chunk_seed"),
                        );
                    }
                }
            }
        }
    }
}

/// R6 — `layering`: the cache simulator named in the simulator-agnostic
/// layer. Kernel code emits into the `MemTrace` sink from `rtr-trace`;
/// only `crates/core/src/trace.rs` (and the measurement crates above it)
/// may mention `rtr_archsim`. Applies to manifests too, so a kernel
/// crate cannot even declare the dependency.
fn rule_layering(path: &str, s: &Scrubbed, out: &mut Vec<Finding>) {
    for needle in ["rtr_archsim", "rtr-archsim"] {
        let hits = if needle.contains('-') {
            find_all(&s.text, needle)
        } else {
            token_positions(&s.text, needle)
        };
        for at in hits {
            push(
                out,
                "layering",
                path,
                &s.text,
                at,
                format!(
                    "{needle} named in the simulator-agnostic layer: emit into the MemTrace sink (rtr-trace); the simulator is wired up in crates/core/src/trace.rs"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(src: &str) -> Vec<Finding> {
        lint_source("crates/planning/src/x.rs", src)
    }

    #[test]
    fn crate_classification() {
        assert_eq!(crate_of("crates/geom/src/kdtree.rs"), Some("geom"));
        assert_eq!(crate_of("src/lib.rs"), None);
        assert!(is_crate_root("crates/lint/src/lib.rs"));
        assert!(is_crate_root("crates/lint/src/main.rs"));
        assert!(!is_crate_root("crates/lint/src/rules.rs"));
    }

    #[test]
    fn hashmap_flagged_in_kernel_not_in_harness() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(kernel(src).len(), 1);
        assert!(lint_source("crates/harness/src/x.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_flagged_outside_measurement_crates() {
        let src = "let t = std::time::Instant::now();\n";
        let f = kernel(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wall-clock");
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
        assert!(lint_source("crates/harness/src/x.rs", src).is_empty());
    }

    #[test]
    fn alloc_flagged_only_inside_hot_spans() {
        let src =
            "fn cold() { let v = vec![1]; }\nfn mul_into(o: &mut V) { let v = Vec::new(); }\n";
        let f = kernel(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "hot-alloc");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn scratch_constructors_are_exempt() {
        let src = "impl IcpScratch {\n  fn new() -> Self { Self { v: Vec::new() } }\n  fn step(&mut self) { self.v = x.to_vec(); }\n}\n";
        let f = kernel(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains(".to_vec()"));
    }

    #[test]
    fn allow_suppresses_and_requires_reason() {
        let ok = "// rtr-lint: allow(nondet-iter) -- lookups only, never iterated\nuse std::collections::HashMap;\n";
        let f = kernel(ok);
        assert_eq!(f.len(), 1);
        assert!(f[0].allowed.is_some());

        let bad = "use std::collections::HashMap; // rtr-lint: allow(nondet-iter)\n";
        let f = kernel(bad);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f
            .iter()
            .any(|x| x.rule == "allow-syntax" && x.allowed.is_none()));
    }

    #[test]
    fn unknown_rule_in_allow_is_flagged() {
        let f = kernel("let x = 1; // rtr-lint: allow(made-up) -- because\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "allow-syntax");
    }

    #[test]
    fn missing_forbid_flagged_on_crate_roots_only() {
        let f = lint_source("crates/geom/src/lib.rs", "pub mod x;\n");
        assert!(f.iter().any(|x| x.message.contains("forbid(unsafe_code)")));
        let f = lint_source("crates/geom/src/x.rs", "pub mod y;\n");
        assert!(f.is_empty());
    }

    #[test]
    fn unsafe_needs_safety_comment_in_allowlisted_crate() {
        let bad = "#![forbid(unsafe_code)]\nfn f() { unsafe { g() } }\n";
        let f = lint_source("crates/simd/src/lib.rs", bad);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("SAFETY"));
        let good = "#![forbid(unsafe_code)]\n// SAFETY: g has no preconditions\nfn f() { unsafe { g() } }\n";
        assert!(lint_source("crates/simd/src/lib.rs", good).is_empty());
    }

    #[test]
    fn unsafe_outside_allowlist_is_flagged_even_with_safety() {
        let src = "#![forbid(unsafe_code)]\n// SAFETY: documented, but geom may not use unsafe at all\nfn f() { unsafe { g() } }\n";
        let f = lint_source("crates/geom/src/lib.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("allowlist"));
    }

    #[test]
    fn gated_forbid_accepted_only_on_the_allowlist() {
        let gated =
            "#![cfg_attr(not(feature = \"intrinsics\"), forbid(unsafe_code))]\npub fn f() {}\n";
        assert!(lint_source("crates/simd/src/lib.rs", gated).is_empty());
        let f = lint_source("crates/geom/src/lib.rs", gated);
        assert!(f.iter().any(|x| x.message.contains("forbid(unsafe_code)")));
    }

    #[test]
    fn simd_lane_kernels_are_hot_alloc_spans() {
        let src = "pub fn dot(xs: &[f64]) -> f64 { let v = xs.to_vec(); v[0] }\nfn sum_lanes(xs: &[f64]) -> f64 { let c = xs.to_vec(); c[0] }\nfn helper(xs: &[f64]) -> f64 { xs.to_vec()[0] }\n";
        let f = lint_source("crates/simd/src/kernels.rs", src);
        let hot: Vec<_> = f.iter().filter(|x| x.rule == "hot-alloc").collect();
        assert_eq!(hot.len(), 2, "dot and sum_lanes, not helper: {f:?}");
        // The same names outside the SIMD crate stay cold.
        assert!(lint_source("crates/planning/src/x.rs", src)
            .iter()
            .all(|x| x.rule != "hot-alloc"));
    }

    #[test]
    fn ring_producer_fns_are_hot_alloc_spans_in_trace_crate() {
        let src = "pub fn push_batch(&mut self, items: &[T]) -> usize { let v = items.to_vec(); v.len() }\npub fn publish(&mut self, id: u32, v: u64) -> bool { let b = Box::new(v); true }\nfn helper(items: &[u64]) -> Vec<u64> { items.to_vec() }\n";
        let f = lint_source("crates/trace/src/ring.rs", src);
        let hot: Vec<_> = f.iter().filter(|x| x.rule == "hot-alloc").collect();
        assert_eq!(hot.len(), 2, "push_batch and publish, not helper: {f:?}");
        // The same names outside the trace crate stay cold.
        assert!(lint_source("crates/harness/src/x.rs", src)
            .iter()
            .all(|x| x.rule != "hot-alloc"));
    }

    #[test]
    fn consume_batch_clock_reads_flagged_even_in_clock_crates() {
        let bad = "fn consume_batch(&mut self, batch: &[TraceOp]) { let t = Instant::now(); }\n";
        let f = lint_source("crates/harness/src/collector.rs", bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "wall-clock");
        assert!(f[0].message.contains("consume_batch"));
        // Clock reads elsewhere in the measurement crates stay legal...
        let ok = "fn drain(&mut self) { let t = Instant::now(); }\n";
        assert!(lint_source("crates/harness/src/collector.rs", ok).is_empty());
        // ...and consume_batch in a non-clock crate is already covered by
        // the blanket rule (exactly one finding, not two).
        let f = lint_source("crates/archsim/src/x.rs", bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "wall-clock");
    }

    #[test]
    fn par_rng_requires_chunk_seed() {
        let bad = "pool.par_map(&xs, |i, x| { let mut rng = SimRng::seed_from(7); x })\n";
        let f = kernel(bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "par-rng");
        let good =
            "pool.par_map(&xs, |i, x| { let mut rng = SimRng::seed_from(chunk_seed(s, i as u64)); x })\n";
        assert!(kernel(good).is_empty());
    }

    #[test]
    fn rng_outside_parallel_closures_is_fine() {
        assert!(kernel("let mut rng = SimRng::seed_from(self.config.seed);\n").is_empty());
    }

    #[test]
    fn layering_scope_covers_kernel_crates_and_core_adapters() {
        assert!(is_layered("crates/control/src/mpc.rs"));
        assert!(is_layered("crates/perception/Cargo.toml"));
        assert!(is_layered("crates/core/src/kernels/planning.rs"));
        assert!(!is_layered("crates/core/src/trace.rs"));
        assert!(!is_layered("crates/bench/src/lib.rs"));
        assert!(!is_layered("crates/archsim/src/hierarchy.rs"));
    }

    #[test]
    fn simulator_named_in_kernel_source_is_flagged() {
        let src = "let report = rtr_archsim::MemorySim::i3_8109u().report();\n";
        let f = kernel(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "layering");
        assert!(lint_source("crates/core/src/trace.rs", src).is_empty());
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn simulator_dependency_in_kernel_manifest_is_flagged() {
        let toml = "[dependencies]\nrtr-trace.workspace = true\nrtr-archsim.workspace = true\n";
        let f = lint_source("crates/planning/Cargo.toml", toml);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "layering");
        assert_eq!(f[0].line, 3);
        assert!(lint_source("crates/core/Cargo.toml", toml).is_empty());
    }

    #[test]
    fn simulator_in_comments_or_core_adapter_subtree() {
        // Comments are scrubbed before matching: prose pointers to the
        // simulator remain legal in kernel crates.
        assert!(kernel("// measured via rtr_archsim, see bench\n").is_empty());
        let f = lint_source(
            "crates/core/src/kernels/perception.rs",
            "use rtr_archsim::MemorySim;\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "layering");
    }
}

//! The rule engine: six lexical rules plus two graph-backed rules, each
//! the static form of a ROADMAP contract, plus the `allow-syntax` meta
//! rule.
//!
//! | id | contract |
//! |------------------|-----------------------------------------------|
//! | `nondet-iter`    | kernel outputs never depend on hash iteration |
//! | `wall-clock`     | kernels never read the wall clock directly; collector `consume_batch` callbacks never do, even in the measurement crates |
//! | `hot-alloc`      | `*_into` / `process_batch` / `flush` / ring-producer (`push`/`push_batch`/`publish`) / `*Scratch` / `step` on `*Instance`/`*State` steady state is heap-free |
//! | `unsafe-hygiene` | crate roots forbid `unsafe`; opt-outs justify |
//! | `par-rng`        | parallel closures derive RNG via `chunk_seed` |
//! | `layering`       | kernel-layer code never names the cache simulator |
//! | `atomic-ordering`| every memory-ordering token in the lock-free files sits in a fn with a `// ORDERING:` rationale; `SeqCst` is deny-by-default |
//! | `trace-gated`    | kernel `MemTrace` emissions are dominated by a `trace.enabled()` check |
//!
//! Rules are scoped by crate (see [`crate_of`]): `nondet-iter` guards the
//! kernel crates, `wall-clock` everything except the measurement crates
//! (`harness`, `bench`, `scenario` — which times its pipeline stages —
//! and `lint` itself, which times its own pass) — where only
//! `consume_batch` spans are scanned — `layering` the algorithm crates
//! plus the adapter subtree in `core` (see [`is_layered`]), the rest the
//! whole workspace.
//!
//! `hot-alloc` and `wall-clock` additionally fire *transitively*: a hot
//! entry point whose resolved callees allocate or read the clock is a
//! finding even when its own body is clean, with the offending call
//! chain attached (see [`crate::facts`]). The entry point for a whole
//! workspace is [`lint_workspace`]; [`lint_source`] lints one file by
//! wrapping it in a single-file workspace.

use crate::callgraph::CallGraph;
use crate::facts::{chain, Barrier, Facts, Seeds};
use crate::index::{FileAnalysis, FnId, WorkspaceIndex};
use crate::lexer::{line_of, matching_delim, token_positions, Span};
use crate::report::Finding;

/// Crates whose outputs are benchmark kernel results: hash-iteration
/// order must never reach them (ROADMAP determinism contract).
/// `scenario` is here because its golden replay is the same contract at
/// closed-loop scale: byte-identical at any thread count.
pub const KERNEL_CRATES: [&str; 7] = [
    "control",
    "core",
    "geom",
    "perception",
    "planning",
    "scenario",
    "sim",
];

/// Crates that own measurement: the only places wall-clock reads live.
/// `lint` is here because `rtr-lint` times its own workspace pass and
/// reports the wall time in `LINT_report.json`; `scenario` because the
/// closed-loop runner times its pipeline stages at the harness layer
/// (per-tick latencies streamed through the metric channel).
pub const CLOCK_CRATES: [&str; 4] = ["bench", "harness", "lint", "scenario"];

/// Crates whose algorithm code is generic over the `MemTrace` sink and
/// must never name the cache simulator directly (PR 5 layering
/// inversion); `crates/core/src/kernels/` joins them via [`is_layered`].
pub const LAYERED_CRATES: [&str; 6] = [
    "control",
    "geom",
    "perception",
    "planning",
    "scenario",
    "sim",
];

/// Crates that may carry `unsafe` code at all — only the SIMD crate's
/// optional `core::arch` intrinsics backend. Allowlisted crate roots may
/// replace the unconditional `#![forbid(unsafe_code)]` with the
/// feature-gated `#![cfg_attr(not(feature = "..."), forbid(unsafe_code))]`
/// form; every `unsafe` block there still needs its `// SAFETY:` line.
/// Everywhere else an `unsafe` token is itself a finding, SAFETY comment
/// or not.
pub const UNSAFE_ALLOWLIST: [&str; 1] = ["simd"];

/// Lane-kernel entry points in `crates/simd` whose bodies `hot-alloc`
/// scans like any `*_into` span: the SoA fast paths sit inside kernel
/// inner loops and must be allocation-free.
pub const SIMD_HOT_FNS: [&str; 9] = [
    "sum",
    "sum_sq",
    "dot",
    "axpy",
    "axpy4",
    "div_assign",
    "squared_distances",
    "squared_distances_dyn",
    "combine_tail",
];

/// Ring-producer entry points in `crates/trace` whose bodies `hot-alloc`
/// scans like any `*_into` span: they run once per telemetry record (or
/// per batch) on the kernel's hot thread, and the transport's whole
/// point is that this path never touches the allocator.
pub const RING_HOT_FNS: [&str; 8] = [
    "push",
    "try_push",
    "push_batch",
    "try_push_batch",
    "publish",
    // RingTrace's amortized fast/slow split and the producer internals
    // they lean on run on the same hot thread as the entry points.
    "push_unpublished",
    "push_slow",
    "refresh_free",
];

/// All rule identifiers, as used in `allow(<rule>)` annotations.
pub const RULES: [&str; 8] = [
    "nondet-iter",
    "wall-clock",
    "hot-alloc",
    "unsafe-hygiene",
    "par-rng",
    "layering",
    "atomic-ordering",
    "trace-gated",
];

/// Heap-allocating expressions forbidden inside hot spans; these also
/// seed the transitive `allocates` fact.
pub const ALLOC_NEEDLES: [&str; 7] = [
    "Vec::new",
    "vec!",
    ".to_vec()",
    ".collect()",
    ".collect::",
    "Box::new",
    ".clone()",
];

/// Wall-clock reads; these also seed the transitive `reads-clock` fact.
pub const CLOCK_NEEDLES: [&str; 2] = ["Instant::now", "SystemTime"];

/// Structural barriers for the transitive `allocates` fact.
/// `Pool::par_chunks_mut` is fan-out machinery: its needle hits (the
/// chunk-range `.clone()` and the join-handle `.collect()`) run once per
/// parallel region, not per item, and the per-item work it executes is
/// the caller's own closure — which the caller's span is scanned for
/// directly. Without the barrier every `par_map_into` caller would
/// inherit a phantom "allocates" fact from the scaffolding.
pub const ALLOC_BARRIERS: [Barrier; 1] = [Barrier {
    krate: "harness",
    impl_type: Some("Pool"),
    name: Some("par_chunks_mut"),
}];

/// Structural barriers for the transitive `reads-clock` fact: the
/// harness profiler types *are* the sanctioned timing channel the
/// wall-clock rule tells kernels to route through, so a hot entry that
/// calls `Profiler::hot_start`/`HotRegion`/`Roi` must not inherit a
/// clock fact from them.
pub const CLOCK_BARRIERS: [Barrier; 3] = [
    Barrier {
        krate: "harness",
        impl_type: Some("Profiler"),
        name: None,
    },
    Barrier {
        krate: "harness",
        impl_type: Some("HotRegion"),
        name: None,
    },
    Barrier {
        krate: "harness",
        impl_type: Some("Roi"),
        name: None,
    },
];

/// Hash-ordered containers; seed of the `touches-nondet-iter` fact.
pub const NONDET_NEEDLES: [&str; 2] = ["HashMap", "HashSet"];

/// The files `atomic-ordering` audits: the hand-rolled lock-free code.
pub const ATOMIC_SCOPE: [&str; 3] = [
    "crates/trace/src/ring.rs",
    "crates/trace/src/sync.rs",
    "crates/harness/src/collector.rs",
];

/// Extracts the crate name from a workspace-relative path like
/// `crates/planning/src/rrtstar.rs`.
pub fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// Returns `true` when `path` belongs to the simulator-agnostic layer:
/// the algorithm crates ([`LAYERED_CRATES`], sources and manifest alike)
/// plus the kernel-adapter subtree of `core`. The only `core` module
/// allowed to name `rtr_archsim` is `src/trace.rs`, which owns the
/// `--trace` wiring.
pub fn is_layered(path: &str) -> bool {
    crate_of(path).is_some_and(|k| LAYERED_CRATES.contains(&k))
        || path.starts_with("crates/core/src/kernels/")
}

/// Returns `true` when `path` is a crate root (`src/lib.rs` or
/// `src/main.rs` of a workspace crate), where `unsafe-hygiene` demands
/// `#![forbid(unsafe_code)]`.
pub fn is_crate_root(path: &str) -> bool {
    crate_of(path).is_some() && (path.ends_with("/src/lib.rs") || path.ends_with("/src/main.rs"))
}

/// Lints one file. `path` must be workspace-relative (it selects which
/// rules apply); `source` is the file text. A convenience wrapper over
/// [`lint_workspace`] with a single-file workspace — transitive rules
/// still run, over the file's internal call graph.
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    lint_workspace(&[(path.to_owned(), source.to_owned())])
}

/// Lints a whole workspace: each file is lexed exactly once into a
/// [`FileAnalysis`] shared by every rule, the per-file lexical rules
/// run, then the interprocedural phase (index → call graph → transitive
/// facts) adds the graph-backed findings. Allow suppression is applied
/// per file at the end.
pub fn lint_workspace(files: &[(String, String)]) -> Vec<Finding> {
    let analyses: Vec<FileAnalysis> = files.iter().map(|(p, s)| FileAnalysis::new(p, s)).collect();

    let mut raw: Vec<Finding> = Vec::new();
    for fa in &analyses {
        per_file_rules(fa, &mut raw);
    }

    let index = WorkspaceIndex::build(analyses);
    let graph = CallGraph::build(&index);
    let seeds = Seeds {
        alloc: &ALLOC_NEEDLES,
        clock: &CLOCK_NEEDLES,
        nondet: &NONDET_NEEDLES,
        alloc_barriers: &ALLOC_BARRIERS,
        clock_barriers: &CLOCK_BARRIERS,
    };
    let facts = Facts::compute(&index, &graph, &seeds);
    rule_transitive(&index, &graph, &facts, &mut raw);
    rule_trace_gated(&index, &graph, &mut raw);

    // Dedup overlapping-span double reports.
    raw.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    raw.dedup_by(|a, b| {
        a.file == b.file && a.line == b.line && a.rule == b.rule && a.message == b.message
    });

    let mut out = Vec::new();
    for fa in &index.files {
        let file_findings: Vec<Finding> =
            raw.iter().filter(|f| f.file == fa.path).cloned().collect();
        out.extend(apply_allows(fa, file_findings));
    }
    out
}

/// Runs every per-file lexical rule applicable to `fa`.
fn per_file_rules(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    // Manifests (`Cargo.toml`) only participate in the layering rule;
    // the Rust-syntax rules read `.rs` files.
    if fa.is_rust {
        if KERNEL_CRATES.contains(&fa.krate.as_str()) {
            rule_nondet_iter(fa, out);
        }
        if !CLOCK_CRATES.contains(&fa.krate.as_str()) {
            rule_wall_clock(fa, out);
        } else {
            rule_wall_clock_consumer(fa, out);
        }
        rule_hot_alloc(fa, out);
        rule_unsafe_hygiene(fa, out);
        rule_par_rng(fa, out);
        rule_atomic_ordering(fa, out);
    }
    if is_layered(&fa.path) {
        rule_layering(fa, out);
    }
}

/// Marks findings covered by an allow annotation and emits
/// `allow-syntax` findings for annotations that name an unknown rule or
/// omit the `-- <reason>`. An annotation covers its own line and the
/// next *item* line below it — attribute lines (`#[...]`/`#![...]`) are
/// skipped, so an allow above a `#[inline]`-decorated fn still attaches
/// to the fn itself.
fn apply_allows(fa: &FileAnalysis, mut findings: Vec<Finding>) -> Vec<Finding> {
    let lines: Vec<&str> = fa.scrubbed.original.lines().collect();
    for allow in &fa.scrubbed.allows {
        if allow.reason.is_empty() {
            findings.push(Finding {
                rule: "allow-syntax".to_owned(),
                file: fa.path.clone(),
                line: allow.line,
                message: format!(
                    "allow({}) annotation is missing its `-- <reason>` justification",
                    allow.rule
                ),
                allowed: None,
                chain: Vec::new(),
            });
            continue;
        }
        if !RULES.contains(&allow.rule.as_str()) {
            findings.push(Finding {
                rule: "allow-syntax".to_owned(),
                file: fa.path.clone(),
                line: allow.line,
                message: format!("allow({}) names an unknown rule", allow.rule),
                allowed: None,
                chain: Vec::new(),
            });
            continue;
        }
        // The covered line below the annotation: skip attributes.
        let mut below = allow.line + 1;
        while lines
            .get(below - 1)
            .is_some_and(|l| l.trim_start().starts_with("#["))
        {
            below += 1;
        }
        for finding in &mut findings {
            if finding.rule == allow.rule && (finding.line == allow.line || finding.line == below) {
                finding.allowed = Some(allow.reason.clone());
            }
        }
    }
    findings.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    findings
}

fn push(out: &mut Vec<Finding>, rule: &str, fa: &FileAnalysis, offset: usize, message: String) {
    out.push(Finding {
        rule: rule.to_owned(),
        file: fa.path.clone(),
        line: line_of(&fa.scrubbed.text, offset),
        message,
        allowed: None,
        chain: Vec::new(),
    });
}

/// R1 — `nondet-iter`: `HashMap`/`HashSet` in a kernel crate. Hash-seed
/// randomization makes their iteration order differ run to run; any
/// kernel-crate use must either switch to `BTreeMap`/`BTreeSet` or carry
/// an allow annotation proving the map is never iterated.
fn rule_nondet_iter(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    for token in NONDET_NEEDLES {
        for at in token_positions(&fa.scrubbed.text, token) {
            push(
                out,
                "nondet-iter",
                fa,
                at,
                format!("{token} in kernel crate: iteration order is nondeterministic (use BTreeMap/BTreeSet or justify with an allow)"),
            );
        }
    }
}

/// R2 — `wall-clock`: `Instant::now` / `SystemTime` outside the
/// measurement crates. Kernels must take timing through the harness
/// profiler hooks (`Profiler::hot_start`/`hot_add`, `Profiler::span`,
/// `HotRegion`), which the measurement knob can turn off.
fn rule_wall_clock(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    for needle in CLOCK_NEEDLES {
        for at in token_positions(&fa.scrubbed.text, needle) {
            push(
                out,
                "wall-clock",
                fa,
                at,
                format!(
                    "{needle} in a kernel crate: route timing through the harness profiler hooks"
                ),
            );
        }
    }
}

/// R2b — `wall-clock` inside the measurement crates: the crates are
/// exempt as a whole (they own timing), but `consume_batch` bodies are
/// not — a `RingConsumer` callback runs on the collector thread, where
/// the telemetry contract is "producer times, collector aggregates". A
/// clock read there would silently re-time records that were already
/// timed at the source.
fn rule_wall_clock_consumer(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    let text = &fa.scrubbed.text;
    for item in fa.fns.iter().filter(|f| f.name == "consume_batch") {
        let body = &text[item.span.start..item.span.end];
        for needle in CLOCK_NEEDLES {
            for rel in token_positions(body, needle) {
                push(
                    out,
                    "wall-clock",
                    fa,
                    item.span.start + rel,
                    format!(
                        "{needle} inside a consume_batch collector callback: \
                         timing belongs to the producer side of the ring"
                    ),
                );
            }
        }
    }
}

/// R3 — `hot-alloc`: allocation inside the span of a `*_into` function,
/// a `process_batch`/`flush` function (the batched trace transport: one
/// of these runs per buffer flush on every traced access stream), a
/// ring-producer entry point in `crates/trace` ([`RING_HOT_FNS`]: the
/// telemetry publish path runs on the kernel's hot thread), a
/// `*Scratch` impl, or a `step` fn on a `*Instance`/`*State` impl (the
/// stepped kernel lifecycle: `step` is the per-tick hot path; the
/// `instantiate`/`finish` ends may allocate). Constructors (`fn new`,
/// `fn default`, `fn with_*`) inside Scratch impls are exempt: warmup
/// may allocate, steady state may not (ROADMAP workspace convention).
fn rule_hot_alloc(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    let text = &fa.scrubbed.text;
    // In the SIMD crate the lane-kernel entry points (and their
    // `_scalar`/`_lanes` twins) are hot spans too; in the trace crate,
    // the ring-producer entry points.
    let simd_crate = fa.krate == "simd";
    let trace_crate = fa.krate == "trace";
    let mut hot: Vec<Span> = fa
        .fns
        .iter()
        .filter(|f| {
            let n = f.name.as_str();
            n.ends_with("_into")
                || n == "process_batch"
                || n == "flush"
                || (trace_crate && RING_HOT_FNS.contains(&n))
                || (simd_crate
                    && (SIMD_HOT_FNS.contains(&n)
                        || n.ends_with("_scalar")
                        || n.ends_with("_lanes")))
        })
        .map(|f| f.span)
        .collect();
    // Constructor sub-spans are exempt from the Scratch-impl scan.
    let mut exempt: Vec<Span> = Vec::new();
    for imp in fa.impls.iter().filter(|imp| {
        imp.header
            .split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
            .any(|word| word.ends_with("Scratch") && !word.is_empty())
    }) {
        for f in fa.fns.iter().filter(|f| imp.span.contains(f.span.start)) {
            if is_ctor(&f.name) {
                exempt.push(f.span);
            }
        }
        hot.push(imp.span);
    }
    // Stepped-lifecycle impls: only the `step` fn joins the hot set —
    // `instantiate` allocates the instance and `finish` builds the
    // report, both off the per-tick path.
    for imp in fa.impls.iter().filter(|imp| {
        imp.header
            .split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
            .any(|word| !word.is_empty() && (word.ends_with("Instance") || word.ends_with("State")))
    }) {
        for f in fa
            .fns
            .iter()
            .filter(|f| f.name == "step" && imp.span.contains(f.span.start))
        {
            hot.push(f.span);
        }
    }

    for span in &hot {
        let body = &text[span.start..span.end];
        for needle in ALLOC_NEEDLES {
            let hits = if needle.starts_with('.') || needle.ends_with('!') {
                find_all(body, needle)
            } else {
                token_positions(body, needle)
            };
            for rel in hits {
                let at = span.start + rel;
                if exempt.iter().any(|e| e.contains(at)) {
                    continue;
                }
                push(
                    out,
                    "hot-alloc",
                    fa,
                    at,
                    format!(
                        "{needle} inside an allocation-free hot span (*_into/\
                         process_batch/flush fn, *Scratch impl, or step fn \
                         on a *Instance/*State impl)"
                    ),
                );
            }
        }
    }
}

/// Scratch-impl constructor names exempt from the hot-alloc scan.
fn is_ctor(name: &str) -> bool {
    name == "new" || name == "default" || name.starts_with("with_")
}

/// Plain substring occurrences (for dotted/macro needles that carry their
/// own boundary characters).
fn find_all(text: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = text[from..].find(needle) {
        out.push(from + pos);
        from += pos + needle.len();
    }
    out
}

/// R4 — `unsafe-hygiene`: every crate root carries
/// `#![forbid(unsafe_code)]`, and any `unsafe` token outside the
/// [`UNSAFE_ALLOWLIST`] is a finding outright. Allowlisted crates (the
/// SIMD intrinsics backend) may gate the forbid behind a feature via
/// `#![cfg_attr(..., forbid(unsafe_code))]`, but every `unsafe` block
/// there still needs a `// SAFETY:` comment on its own or the preceding
/// line.
fn rule_unsafe_hygiene(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    let s = &fa.scrubbed;
    let allowlisted = UNSAFE_ALLOWLIST.contains(&fa.krate.as_str());
    if is_crate_root(&fa.path) {
        let compact: String = s.text.chars().filter(|c| !c.is_whitespace()).collect();
        let unconditional = compact.contains("#![forbid(unsafe_code)]");
        let feature_gated =
            compact.contains("#![cfg_attr(") && compact.contains(",forbid(unsafe_code))]");
        if !(unconditional || (allowlisted && feature_gated)) {
            out.push(Finding {
                rule: "unsafe-hygiene".to_owned(),
                file: fa.path.clone(),
                line: 1,
                message: "crate root is missing #![forbid(unsafe_code)]".to_owned(),
                allowed: None,
                chain: Vec::new(),
            });
        }
    }
    let lines: Vec<&str> = s.original.lines().collect();
    for at in token_positions(&s.text, "unsafe") {
        if !allowlisted {
            push(
                out,
                "unsafe-hygiene",
                fa,
                at,
                "unsafe outside the allowlist (only the rtr-simd intrinsics backend may carry unsafe code)".to_owned(),
            );
            continue;
        }
        let line = line_of(&s.text, at);
        let documented = [line, line.saturating_sub(1)]
            .iter()
            .filter(|&&l| l >= 1)
            .any(|&l| lines.get(l - 1).is_some_and(|t| t.contains("SAFETY:")));
        if !documented {
            push(
                out,
                "unsafe-hygiene",
                fa,
                at,
                "unsafe without a // SAFETY: comment on the same or preceding line".to_owned(),
            );
        }
    }
}

/// R5 — `par-rng`: inside the argument span of a
/// `par_map(...)`/`par_chunks_mut(...)` call, RNG state may only be
/// derived via `chunk_seed` (ROADMAP threading contract: per-chunk seed
/// streams keep parallel runs bit-identical at any thread count).
fn rule_par_rng(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    let s = &fa.scrubbed;
    let bytes = s.text.as_bytes();
    for entry in ["par_map", "par_chunks_mut"] {
        for at in token_positions(&s.text, entry) {
            // Find the call's opening paren.
            let mut j = at + entry.len();
            while j < bytes.len() && (bytes[j] == b' ' || bytes[j] == b'\n' || bytes[j] == b'\r') {
                j += 1;
            }
            if j >= bytes.len() || bytes[j] != b'(' {
                continue;
            }
            let Some(close) = matching_delim(&s.text, j, b'(', b')') else {
                continue;
            };
            let call = &s.text[j..close];
            for ctor in ["seed_from", "thread_rng", "from_entropy"] {
                for rel in token_positions(call, ctor) {
                    // The constructor's own argument span may launder the
                    // seed through `chunk_seed` — that is the contract.
                    let abs = j + rel;
                    let arg_open = abs + ctor.len();
                    let justified = bytes.get(arg_open) == Some(&b'(')
                        && matching_delim(&s.text, arg_open, b'(', b')')
                            .is_some_and(|end| s.text[arg_open..end].contains("chunk_seed"));
                    if !justified {
                        push(
                            out,
                            "par-rng",
                            fa,
                            abs,
                            format!("{ctor} inside a {entry} closure must derive its seed via chunk_seed"),
                        );
                    }
                }
            }
        }
    }
}

/// R6 — `layering`: the cache simulator named in the simulator-agnostic
/// layer. Kernel code emits into the `MemTrace` sink from `rtr-trace`;
/// only `crates/core/src/trace.rs` (and the measurement crates above it)
/// may mention `rtr_archsim`. Applies to manifests too, so a kernel
/// crate cannot even declare the dependency.
fn rule_layering(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    let s = &fa.scrubbed;
    for needle in ["rtr_archsim", "rtr-archsim"] {
        let hits = if needle.contains('-') {
            find_all(&s.text, needle)
        } else {
            token_positions(&s.text, needle)
        };
        for at in hits {
            push(
                out,
                "layering",
                fa,
                at,
                format!(
                    "{needle} named in the simulator-agnostic layer: emit into the MemTrace sink (rtr-trace); the simulator is wired up in crates/core/src/trace.rs"
                ),
            );
        }
    }
}

/// R7 — `atomic-ordering`: every `Ordering::<variant>` token in the
/// lock-free files ([`ATOMIC_SCOPE`]) must sit inside a fn whose item
/// span carries a `// ORDERING:` rationale comment, mirroring the
/// `// SAFETY:` convention. `SeqCst` is deny-by-default regardless: a
/// sequentially-consistent fence in an SPSC transport is either a bug or
/// a deliberate choice that deserves a justified allow.
fn rule_atomic_ordering(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    if !ATOMIC_SCOPE.contains(&fa.path.as_str()) {
        return;
    }
    let s = &fa.scrubbed;
    let bytes = s.text.as_bytes();
    for at in token_positions(&s.text, "Ordering") {
        let after = at + "Ordering".len();
        if !s.text[after..].starts_with("::") {
            continue;
        }
        let vstart = after + 2;
        let mut vend = vstart;
        while vend < bytes.len() && (bytes[vend] == b'_' || bytes[vend].is_ascii_alphanumeric()) {
            vend += 1;
        }
        let variant = &s.text[vstart..vend];
        if !["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"].contains(&variant) {
            continue;
        }
        let enclosing = fa
            .fns
            .iter()
            .filter(|f| f.span.contains(at))
            .min_by_key(|f| f.span.end - f.span.start);
        match enclosing {
            None => push(
                out,
                "atomic-ordering",
                fa,
                at,
                format!("Ordering::{variant} outside any fn: atomic operations in the lock-free files belong inside documented fns"),
            ),
            Some(item) => {
                if variant == "SeqCst" {
                    push(
                        out,
                        "atomic-ordering",
                        fa,
                        at,
                        "Ordering::SeqCst is deny-by-default in the lock-free files: justify with an allow or weaken the ordering".to_owned(),
                    );
                }
                let documented =
                    s.original[item.span.start..item.span.end].contains("ORDERING:");
                if !documented {
                    push(
                        out,
                        "atomic-ordering",
                        fa,
                        at,
                        format!("Ordering::{variant} in fn `{}` without a // ORDERING: rationale comment", item.name),
                    );
                }
            }
        }
    }
}

/// Method names whose calls count as `MemTrace` emissions for R8.
const TRACE_EMIT_METHODS: [&str; 3] = ["read", "write", "process_batch"];

/// Receiver identifiers the kernels conventionally bind trace sinks to.
const TRACE_RECEIVERS: [&str; 4] = ["trace", "tr", "t", "sink"];

/// True when the hot-entry fn's *alloc* contract applies to `f` — the
/// same selection [`rule_hot_alloc`] makes lexically, lifted to per-fn
/// granularity for the transitive pass.
fn is_alloc_hot_entry(index: &WorkspaceIndex, f: FnId) -> bool {
    let info = &index.fns[f];
    let fa = &index.files[info.file];
    let n = info.name.as_str();
    let name_hot = n.ends_with("_into")
        || n == "process_batch"
        || n == "flush"
        || (fa.krate == "trace" && RING_HOT_FNS.contains(&n))
        || (fa.krate == "simd"
            && (SIMD_HOT_FNS.contains(&n) || n.ends_with("_scalar") || n.ends_with("_lanes")));
    let scratch_hot = info
        .impl_type
        .as_deref()
        .is_some_and(|t| t.ends_with("Scratch"))
        && !is_ctor(n);
    let step_hot = n == "step"
        && info
            .impl_type
            .as_deref()
            .is_some_and(|t| t.ends_with("Instance") || t.ends_with("State"));
    name_hot || scratch_hot || step_hot
}

/// True when the wall-clock contract applies transitively to `f`. In the
/// measurement crates only `consume_batch` callbacks are constrained
/// (the crates otherwise own timing), mirroring the lexical scoping.
fn is_clock_hot_entry(index: &WorkspaceIndex, f: FnId) -> bool {
    let info = &index.fns[f];
    let fa = &index.files[info.file];
    if CLOCK_CRATES.contains(&fa.krate.as_str()) {
        info.name == "consume_batch"
    } else {
        info.name == "consume_batch" || is_alloc_hot_entry(index, f)
    }
}

/// R3t/R2t — transitive `hot-alloc` and `wall-clock`: a hot entry point
/// whose resolved callee holds the `allocates` (resp. `reads-clock`)
/// fact is a finding at the call site, with the full chain down to the
/// seeding token attached. Edges into fns that are themselves hot
/// entries are skipped — those fns get their own findings, and fixing
/// the callee fixes every caller.
fn rule_transitive(
    index: &WorkspaceIndex,
    graph: &CallGraph,
    facts: &Facts,
    out: &mut Vec<Finding>,
) {
    for f in 0..index.fns.len() {
        let alloc_hot = is_alloc_hot_entry(index, f);
        let clock_hot = is_clock_hot_entry(index, f);
        if !alloc_hot && !clock_hot {
            continue;
        }
        let fa = &index.files[index.fns[f].file];
        let n_sites = index.calls[f].len();
        for site_idx in 0..n_sites {
            let site = &index.calls[f][site_idx];
            let candidates = graph.outgoing[f]
                .iter()
                .map(|&e| graph.edges[e])
                .filter(|e| e.site == site_idx);
            let mut flagged_alloc = false;
            let mut flagged_clock = false;
            for edge in candidates {
                let c = edge.callee;
                if alloc_hot
                    && !flagged_alloc
                    && !is_alloc_hot_entry(index, c)
                    && facts.allocates[c].is_some()
                {
                    flagged_alloc = true;
                    let mut full = vec![index.fns[f].qualified_name()];
                    full.extend(chain(index, &facts.allocates, c));
                    out.push(Finding {
                        rule: "hot-alloc".to_owned(),
                        file: fa.path.clone(),
                        line: line_of(&fa.scrubbed.text, site.offset),
                        message: format!(
                            "transitive allocation in an allocation-free hot span: {}",
                            full.join(" -> ")
                        ),
                        allowed: None,
                        chain: full,
                    });
                }
                if clock_hot
                    && !flagged_clock
                    && !is_clock_hot_entry(index, c)
                    && facts.reads_clock[c].is_some()
                {
                    flagged_clock = true;
                    let mut full = vec![index.fns[f].qualified_name()];
                    full.extend(chain(index, &facts.reads_clock, c));
                    out.push(Finding {
                        rule: "wall-clock".to_owned(),
                        file: fa.path.clone(),
                        line: line_of(&fa.scrubbed.text, site.offset),
                        message: format!(
                            "transitive wall-clock read from a hot entry point: {}",
                            full.join(" -> ")
                        ),
                        allowed: None,
                        chain: full,
                    });
                }
            }
        }
    }
}

/// R8 — `trace-gated`: in kernel crates, a `MemTrace` emission
/// (`.read(` / `.write(` / `.process_batch(` on a trace-ish receiver)
/// must be *dominated* by a `trace.enabled()` check: either the call
/// site sits inside a guarded block (lexical block-nesting
/// approximation), or the whole fn is only ever called from guarded
/// positions (greatest-fixpoint over the workspace call graph).
/// `crates/core/src/trace.rs` is exempt — it is the deliberate
/// simulator wiring, the same carve-out the layering rule makes.
fn rule_trace_gated(index: &WorkspaceIndex, graph: &CallGraph, out: &mut Vec<Finding>) {
    let in_scope = |f: FnId| {
        let fa = &index.files[index.fns[f].file];
        fa.is_rust
            && KERNEL_CRATES.contains(&fa.krate.as_str())
            && fa.path != "crates/core/src/trace.rs"
    };

    // Per-fn guarded spans (absolute offsets), for every kernel fn.
    let guards: Vec<Vec<Span>> = (0..index.fns.len())
        .map(|f| {
            if in_scope(f) {
                let fa = &index.files[index.fns[f].file];
                guard_spans(&fa.scrubbed.text, &index.fns[f])
            } else {
                Vec::new()
            }
        })
        .collect();
    let at_guarded = |f: FnId, offset: usize| guards[f].iter().any(|g| g.contains(offset));

    // Greatest fixpoint: a fn is Guarded iff it has at least one
    // resolved workspace caller and every call edge into it is either at
    // a guarded position or comes from a Guarded caller. Start from the
    // optimistic assumption and strike out violators until stable.
    let mut guarded: Vec<bool> = (0..index.fns.len())
        .map(|f| !graph.incoming[f].is_empty())
        .collect();
    loop {
        let mut changed = false;
        for f in 0..index.fns.len() {
            if !guarded[f] {
                continue;
            }
            let ok = graph.incoming[f].iter().all(|&e| {
                let edge = graph.edges[e];
                let site = &index.calls[edge.caller][edge.site];
                at_guarded(edge.caller, site.offset) || guarded[edge.caller]
            });
            if !ok {
                guarded[f] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    for (f, is_guarded) in guarded.iter().enumerate() {
        if !in_scope(f) {
            continue;
        }
        let fa = &index.files[index.fns[f].file];
        for site in &index.calls[f] {
            if !site.is_method
                || !TRACE_EMIT_METHODS.contains(&site.name.as_str())
                || !is_trace_receiver(&fa.scrubbed.text, site)
            {
                continue;
            }
            if at_guarded(f, site.offset) || *is_guarded {
                continue;
            }
            out.push(Finding {
                rule: "trace-gated".to_owned(),
                file: fa.path.clone(),
                line: line_of(&fa.scrubbed.text, site.offset),
                message: format!(
                    "un-gated MemTrace::{} emission in fn `{}`: dominate it with a trace.enabled() check (or call the fn only from guarded positions)",
                    site.name, index.fns[f].name
                ),
                allowed: None,
                chain: Vec::new(),
            });
        }
    }
}

/// Heuristic: is the method call's receiver a trace sink? Conventional
/// binding names, anything containing `trace`, or (for computed
/// receivers like `self.trace.borrow_mut()`) `trace` appearing in the
/// preceding statement window.
fn is_trace_receiver(text: &str, site: &crate::index::CallSite) -> bool {
    match &site.receiver {
        Some(r) => TRACE_RECEIVERS.contains(&r.as_str()) || r.contains("trace"),
        None => {
            let mut lo = site.offset.saturating_sub(64);
            while !text.is_char_boundary(lo) {
                lo -= 1;
            }
            let window = &text[lo..site.offset];
            let stmt = window.rsplit([';', '{', '\n']).next().unwrap_or(window);
            stmt.contains("trace")
        }
    }
}

/// Computes the guarded spans of one fn (absolute offsets): bodies of
/// `if` blocks whose condition contains `.enabled()` or a guard variable
/// bound from an `.enabled()` call (`let traced = trace.enabled();`),
/// and — for negated early-return guards (`if !trace.enabled() { return }`)
/// — the rest of the fn after the `if` block.
fn guard_spans(text: &str, info: &crate::index::FnInfo) -> Vec<Span> {
    let body = &text[info.body_start..info.span.end];
    let base = info.body_start;
    let mut spans = Vec::new();

    // Guard variables: `let <name> = ... .enabled() ...;` on one line.
    let mut vars: Vec<String> = Vec::new();
    for at in find_all(body, ".enabled()") {
        let line_start = body[..at].rfind('\n').map_or(0, |p| p + 1);
        let line = body[line_start..at].trim_start();
        if let Some(rest) = line.strip_prefix("let ") {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                vars.push(name);
            }
        }
    }

    let bytes = body.as_bytes();
    for at in token_positions(body, "if") {
        // Condition runs from after `if` to the block's `{` at bracket
        // depth zero.
        let cond_start = at + 2;
        let mut j = cond_start;
        let mut depth = 0i32;
        let open = loop {
            if j >= bytes.len() {
                break None;
            }
            match bytes[j] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => break Some(j),
                b';' => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(open) = open else { continue };
        let cond = &body[cond_start..open];
        let is_guard = cond.contains(".enabled()")
            || vars.iter().any(|v| !token_positions(cond, v).is_empty());
        if !is_guard {
            continue;
        }
        let Some(close) = matching_delim(body, open, b'{', b'}') else {
            continue;
        };
        if cond.trim_start().starts_with('!') {
            // `if !guard { return/continue; }` — everything after the
            // block (including any else arm) runs only when enabled.
            spans.push(Span {
                start: base + close,
                end: info.span.end,
            });
        } else {
            spans.push(Span {
                start: base + open,
                end: base + close + 1,
            });
        }
    }
    spans
}

/// The one-paragraph specification printed by `--explain <rule>`.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "nondet-iter" => "nondet-iter: HashMap/HashSet tokens in a kernel crate (control, core, geom, perception, planning, sim). Hash-seed randomization makes iteration order differ run to run, which would leak nondeterminism into benchmark outputs. Use BTreeMap/BTreeSet, or carry `// rtr-lint: allow(nondet-iter) -- <reason>` proving the container is never iterated.",
        "wall-clock" => "wall-clock: Instant::now/SystemTime outside the measurement crates (bench, harness, lint, scenario), and inside consume_batch collector callbacks anywhere. Kernels take timing through the harness profiler hooks. Fires transitively: a hot entry point whose resolved callees read the clock is flagged with the call chain (a_into -> helper -> Instant::now); the harness profiler types themselves are barriers (they are the sanctioned channel).",
        "hot-alloc" => "hot-alloc: heap allocation (Vec::new, vec!, .to_vec(), .collect(), Box::new, .clone()) inside a hot span: *_into/process_batch/flush fns, ring-producer fns in crates/trace, lane kernels in crates/simd, *Scratch impls (constructors new/default/with_* exempt), and step fns on *Instance/*State impls (the stepped kernel lifecycle's per-tick path; instantiate/finish may allocate). Fires transitively: a hot entry point whose resolved callees allocate is flagged with the call chain. Pool::par_chunks_mut is a barrier: its clones/collects are per-region fan-out scaffolding, not per-item work.",
        "unsafe-hygiene" => "unsafe-hygiene: crate roots must carry #![forbid(unsafe_code)]; any unsafe token outside the allowlist (crates/simd) is a finding outright; allowlisted unsafe blocks need a // SAFETY: comment on the same or preceding line.",
        "par-rng" => "par-rng: inside par_map/par_chunks_mut argument spans, RNG constructors (seed_from, thread_rng, from_entropy) must derive their seed via chunk_seed so parallel runs stay bit-identical at any thread count.",
        "layering" => "layering: the cache simulator (rtr_archsim) named in the simulator-agnostic layer (algorithm crates, their manifests, and crates/core/src/kernels/). Kernel code emits into the MemTrace sink; only crates/core/src/trace.rs wires the simulator up.",
        "atomic-ordering" => "atomic-ordering: every Ordering::{Relaxed,Acquire,Release,AcqRel,SeqCst} token in crates/trace/src/{ring,sync}.rs and crates/harness/src/collector.rs must sit in a fn whose span carries a // ORDERING: rationale comment (mirroring // SAFETY:). Ordering::SeqCst is deny-by-default: justify it with an allow or weaken the ordering.",
        "trace-gated" => "trace-gated: in kernel crates, MemTrace emissions (.read/.write/.process_batch on a trace receiver) must be dominated by a trace.enabled() check: inside an `if trace.enabled()` block (or after an `if !enabled { return }` early-out, or under a bound guard variable), or in a fn whose every workspace caller calls it from a guarded position. crates/core/src/trace.rs is exempt (it is the simulator wiring).",
        "allow-syntax" => "allow-syntax: a `// rtr-lint: allow(<rule>) -- <reason>` annotation must name a known rule and carry a non-empty reason. An annotation covers its own line and the next non-attribute line below it.",
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(src: &str) -> Vec<Finding> {
        lint_source("crates/planning/src/x.rs", src)
    }

    #[test]
    fn crate_classification() {
        assert_eq!(crate_of("crates/geom/src/kdtree.rs"), Some("geom"));
        assert_eq!(crate_of("src/lib.rs"), None);
        assert!(is_crate_root("crates/lint/src/lib.rs"));
        assert!(is_crate_root("crates/lint/src/main.rs"));
        assert!(!is_crate_root("crates/lint/src/rules.rs"));
    }

    #[test]
    fn hashmap_flagged_in_kernel_not_in_harness() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(kernel(src).len(), 1);
        assert!(lint_source("crates/harness/src/x.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_flagged_outside_measurement_crates() {
        let src = "let t = std::time::Instant::now();\n";
        let f = kernel(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wall-clock");
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
        assert!(lint_source("crates/harness/src/x.rs", src).is_empty());
        assert!(lint_source("crates/lint/src/timing.rs", src).is_empty());
        // The scenario runner times its pipeline stages directly.
        assert!(lint_source("crates/scenario/src/runner.rs", src).is_empty());
    }

    #[test]
    fn alloc_flagged_only_inside_hot_spans() {
        let src =
            "fn cold() { let v = vec![1]; }\nfn mul_into(o: &mut V) { let v = Vec::new(); }\n";
        let f = kernel(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "hot-alloc");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn scratch_constructors_are_exempt() {
        let src = "impl IcpScratch {\n  fn new() -> Self { Self { v: Vec::new() } }\n  fn step(&mut self) { self.v = x.to_vec(); }\n}\n";
        let f = kernel(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains(".to_vec()"));
    }

    #[test]
    fn allow_suppresses_and_requires_reason() {
        let ok = "// rtr-lint: allow(nondet-iter) -- lookups only, never iterated\nuse std::collections::HashMap;\n";
        let f = kernel(ok);
        assert_eq!(f.len(), 1);
        assert!(f[0].allowed.is_some());

        let bad = "use std::collections::HashMap; // rtr-lint: allow(nondet-iter)\n";
        let f = kernel(bad);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f
            .iter()
            .any(|x| x.rule == "allow-syntax" && x.allowed.is_none()));
    }

    #[test]
    fn allow_skips_attribute_lines() {
        let src = "// rtr-lint: allow(hot-alloc) -- warm-up fill, measured cold\n#[inline(never)]\n#[cold]\nfn warm_into(v: &mut Vec<u32>) { let x = vec![1]; }\n";
        let f = kernel(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "hot-alloc");
        assert!(f[0].allowed.is_some(), "{f:?}");
    }

    #[test]
    fn unknown_rule_in_allow_is_flagged() {
        let f = kernel("let x = 1; // rtr-lint: allow(made-up) -- because\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "allow-syntax");
    }

    #[test]
    fn missing_forbid_flagged_on_crate_roots_only() {
        let f = lint_source("crates/geom/src/lib.rs", "pub mod x;\n");
        assert!(f.iter().any(|x| x.message.contains("forbid(unsafe_code)")));
        let f = lint_source("crates/geom/src/x.rs", "pub mod y;\n");
        assert!(f.is_empty());
    }

    #[test]
    fn unsafe_needs_safety_comment_in_allowlisted_crate() {
        let bad = "#![forbid(unsafe_code)]\nfn f() { unsafe { g() } }\n";
        let f = lint_source("crates/simd/src/lib.rs", bad);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("SAFETY"));
        let good = "#![forbid(unsafe_code)]\n// SAFETY: g has no preconditions\nfn f() { unsafe { g() } }\n";
        assert!(lint_source("crates/simd/src/lib.rs", good).is_empty());
    }

    #[test]
    fn unsafe_outside_allowlist_is_flagged_even_with_safety() {
        let src = "#![forbid(unsafe_code)]\n// SAFETY: documented, but geom may not use unsafe at all\nfn f() { unsafe { g() } }\n";
        let f = lint_source("crates/geom/src/lib.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("allowlist"));
    }

    #[test]
    fn gated_forbid_accepted_only_on_the_allowlist() {
        let gated =
            "#![cfg_attr(not(feature = \"intrinsics\"), forbid(unsafe_code))]\npub fn f() {}\n";
        assert!(lint_source("crates/simd/src/lib.rs", gated).is_empty());
        let f = lint_source("crates/geom/src/lib.rs", gated);
        assert!(f.iter().any(|x| x.message.contains("forbid(unsafe_code)")));
    }

    #[test]
    fn simd_lane_kernels_are_hot_alloc_spans() {
        let src = "pub fn dot(xs: &[f64]) -> f64 { let v = xs.to_vec(); v[0] }\nfn sum_lanes(xs: &[f64]) -> f64 { let c = xs.to_vec(); c[0] }\nfn helper(xs: &[f64]) -> f64 { xs.to_vec()[0] }\n";
        let f = lint_source("crates/simd/src/kernels.rs", src);
        let hot: Vec<_> = f.iter().filter(|x| x.rule == "hot-alloc").collect();
        assert_eq!(hot.len(), 2, "dot and sum_lanes, not helper: {f:?}");
        // The same names outside the SIMD crate stay cold.
        assert!(lint_source("crates/planning/src/x.rs", src)
            .iter()
            .all(|x| x.rule != "hot-alloc"));
    }

    #[test]
    fn ring_producer_fns_are_hot_alloc_spans_in_trace_crate() {
        let src = "pub fn push_batch(&mut self, items: &[T]) -> usize { let v = items.to_vec(); v.len() }\npub fn publish(&mut self, id: u32, v: u64) -> bool { let b = Box::new(v); true }\nfn helper(items: &[u64]) -> Vec<u64> { items.to_vec() }\n";
        let f = lint_source("crates/trace/src/other.rs", src);
        let hot: Vec<_> = f.iter().filter(|x| x.rule == "hot-alloc").collect();
        assert_eq!(hot.len(), 2, "push_batch and publish, not helper: {f:?}");
        // The same names outside the trace crate stay cold.
        assert!(lint_source("crates/harness/src/x.rs", src)
            .iter()
            .all(|x| x.rule != "hot-alloc"));
    }

    #[test]
    fn consume_batch_clock_reads_flagged_even_in_clock_crates() {
        let bad = "fn consume_batch(&mut self, batch: &[TraceOp]) { let t = Instant::now(); }\n";
        let f = lint_source("crates/harness/src/metrics.rs", bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "wall-clock");
        assert!(f[0].message.contains("consume_batch"));
        // Clock reads elsewhere in the measurement crates stay legal...
        let ok = "fn drain(&mut self) { let t = Instant::now(); }\n";
        assert!(lint_source("crates/harness/src/metrics.rs", ok).is_empty());
        // ...and consume_batch in a non-clock crate is already covered by
        // the blanket rule (exactly one finding, not two).
        let f = lint_source("crates/archsim/src/x.rs", bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "wall-clock");
    }

    #[test]
    fn par_rng_requires_chunk_seed() {
        let bad = "pool.par_map(&xs, |i, x| { let mut rng = SimRng::seed_from(7); x })\n";
        let f = kernel(bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "par-rng");
        let good =
            "pool.par_map(&xs, |i, x| { let mut rng = SimRng::seed_from(chunk_seed(s, i as u64)); x })\n";
        assert!(kernel(good).is_empty());
    }

    #[test]
    fn rng_outside_parallel_closures_is_fine() {
        assert!(kernel("let mut rng = SimRng::seed_from(self.config.seed);\n").is_empty());
    }

    #[test]
    fn layering_scope_covers_kernel_crates_and_core_adapters() {
        assert!(is_layered("crates/control/src/mpc.rs"));
        assert!(is_layered("crates/perception/Cargo.toml"));
        assert!(is_layered("crates/core/src/kernels/planning.rs"));
        assert!(!is_layered("crates/core/src/trace.rs"));
        assert!(!is_layered("crates/bench/src/lib.rs"));
        assert!(!is_layered("crates/archsim/src/hierarchy.rs"));
    }

    #[test]
    fn simulator_named_in_kernel_source_is_flagged() {
        let src = "let report = rtr_archsim::MemorySim::i3_8109u().report();\n";
        let f = kernel(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "layering");
        assert!(lint_source("crates/core/src/trace.rs", src).is_empty());
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn simulator_dependency_in_kernel_manifest_is_flagged() {
        let toml = "[dependencies]\nrtr-trace.workspace = true\nrtr-archsim.workspace = true\n";
        let f = lint_source("crates/planning/Cargo.toml", toml);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "layering");
        assert_eq!(f[0].line, 3);
        assert!(lint_source("crates/core/Cargo.toml", toml).is_empty());
    }

    #[test]
    fn simulator_in_comments_or_core_adapter_subtree() {
        // Comments are scrubbed before matching: prose pointers to the
        // simulator remain legal in kernel crates.
        assert!(kernel("// measured via rtr_archsim, see bench\n").is_empty());
        let f = lint_source(
            "crates/core/src/kernels/perception.rs",
            "use rtr_archsim::MemorySim;\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "layering");
    }

    // ---- interprocedural: transitive hot-alloc / wall-clock ----

    #[test]
    fn two_hop_transitive_alloc_chain_is_flagged() {
        let src = "fn mul_into(o: &mut V) { helper(o); }\nfn helper(o: &mut V) { grow(o); }\nfn grow(o: &mut V) { o.data = Vec::new(); }\n";
        let f = kernel(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "hot-alloc");
        assert_eq!(f[0].line, 1);
        assert_eq!(f[0].chain, ["mul_into", "helper", "grow", "Vec::new"]);
        assert!(f[0]
            .message
            .contains("mul_into -> helper -> grow -> Vec::new"));
    }

    #[test]
    fn two_hop_transitive_clock_chain_is_flagged() {
        let src = "fn step_into(o: &mut V) { helper(); }\nfn helper() { stamp(); }\nfn stamp() -> u64 { std::time::Instant::now(); 0 }\n";
        let f = kernel(src);
        // Direct wall-clock on stamp's own token, plus the transitive
        // finding at the hot entry's call site.
        let trans: Vec<_> = f
            .iter()
            .filter(|x| x.message.contains("transitive"))
            .collect();
        assert_eq!(trans.len(), 1, "{f:?}");
        assert_eq!(trans[0].rule, "wall-clock");
        assert_eq!(
            trans[0].chain,
            ["step_into", "helper", "stamp", "Instant::now"]
        );
    }

    #[test]
    fn transitive_findings_respect_allows() {
        let src = "fn mul_into(o: &mut V) {\n  // rtr-lint: allow(hot-alloc) -- one-time lazy growth, amortized\n  helper(o);\n}\nfn helper(o: &mut V) { o.data = Vec::new(); }\n";
        let f = kernel(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].allowed.is_some());
    }

    #[test]
    fn calls_between_hot_entries_are_not_double_reported() {
        // flush -> process_batch: both hot; process_batch's own body is
        // flagged directly, the edge is not.
        let src = "fn flush(&mut self) { self.process_batch(); }\nfn process_batch(&mut self) { let v = vec![1]; }\n";
        let f = kernel(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn cold_fns_calling_allocating_helpers_stay_clean() {
        let src = "fn setup() { helper(); }\nfn helper() -> Vec<u32> { Vec::new() }\n";
        assert!(kernel(src).is_empty());
    }

    #[test]
    fn scratch_steady_state_is_transitively_checked() {
        let src = "impl PfScratch {\n  fn new() -> Self { build() }\n  fn resample(&mut self) { self.w = build(); }\n}\nfn build() -> Vec<f64> { Vec::new() }\n";
        let f = kernel(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "hot-alloc");
        assert_eq!(f[0].chain, ["PfScratch::resample", "build", "Vec::new"]);
    }

    #[test]
    fn instance_step_fns_are_hot_alloc_spans() {
        let src = "impl PflInstance {\n  fn instantiate() -> Self { Self { v: Vec::new() } }\n  fn step(&mut self) { self.v = x.to_vec(); }\n  fn finish(self) -> Vec<f64> { self.v.clone() }\n}\n";
        let f = kernel(src);
        assert_eq!(f.len(), 1, "only the step body: {f:?}");
        assert_eq!(f[0].rule, "hot-alloc");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains(".to_vec()"));
    }

    #[test]
    fn state_step_fns_are_hot_alloc_spans() {
        let src = "impl ScenarioState {\n  fn step(&mut self) -> bool { let v = vec![1]; true }\n  fn reset(&mut self) { self.v = vec![1]; }\n}\n";
        let f = kernel(src);
        assert_eq!(f.len(), 1, "step hot, reset cold: {f:?}");
        assert_eq!(f[0].line, 2);
        // `step` on an unrelated impl type stays cold.
        let other = "impl Planner {\n  fn step(&mut self) { let v = vec![1]; }\n}\n";
        assert!(kernel(other).is_empty());
    }

    #[test]
    fn instance_step_bodies_are_transitively_checked() {
        let src = "impl SrecInstance {\n  fn step(&mut self) { self.buf = build(); }\n}\nfn build() -> Vec<f64> { Vec::new() }\n";
        let f = kernel(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "hot-alloc");
        assert_eq!(f[0].chain, ["SrecInstance::step", "build", "Vec::new"]);
    }

    #[test]
    fn pool_fanout_barrier_masks_the_structural_clone() {
        let src = "impl Pool {\n  pub fn par_map_into(&self, o: &mut V) { self.par_chunks_mut(o); }\n  pub fn par_chunks_mut(&self, o: &mut V) { let f = job.clone(); }\n}\n";
        let f = lint_source("crates/harness/src/pool.rs", src);
        assert!(f.is_empty(), "barrier masks the fan-out clone: {f:?}");
        // The same shape on a non-barrier type is still a finding.
        let src = "impl Worker {\n  pub fn par_map_into(&self, o: &mut V) { self.fan_out(o); }\n  pub fn fan_out(&self, o: &mut V) { let f = job.clone(); }\n}\n";
        let f = lint_source("crates/harness/src/pool.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "hot-alloc");
        assert!(f[0].message.contains("transitive"));
    }

    #[test]
    fn profiler_barrier_keeps_the_sanctioned_timing_channel_legal() {
        let files = vec![
            (
                "crates/harness/src/profiler.rs".to_owned(),
                "impl Profiler {\n  pub fn hot_start(&mut self) { self.t = Instant::now(); }\n}\n"
                    .to_owned(),
            ),
            (
                "crates/geom/src/hot.rs".to_owned(),
                "pub fn icp_into(o: &mut V, p: &mut Profiler) { p.hot_start(); }\n".to_owned(),
            ),
        ];
        let f = lint_workspace(&files);
        assert!(f.is_empty(), "profiler calls from hot entries: {f:?}");
    }

    #[test]
    fn consume_batch_transitive_clock_read_is_flagged() {
        let src = "fn consume_batch(&mut self, b: &[Op]) { self.stamp(); }\nfn stamp(&mut self) { let t = Instant::now(); }\n";
        let f = lint_source("crates/harness/src/metrics.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "wall-clock");
        assert!(f[0].message.contains("transitive"));
        assert_eq!(f[0].chain, ["consume_batch", "stamp", "Instant::now"]);
    }

    #[test]
    fn cross_file_transitive_chain_resolves_within_crate() {
        let files = vec![
            (
                "crates/geom/src/hot.rs".to_owned(),
                "pub fn icp_into(o: &mut V) { crate::util::prepare(o); }\n".to_owned(),
            ),
            (
                "crates/geom/src/util.rs".to_owned(),
                "pub fn prepare(o: &mut V) { o.buf = Vec::new(); }\n".to_owned(),
            ),
        ];
        let f = lint_workspace(&files);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].file, "crates/geom/src/hot.rs");
        assert_eq!(f[0].chain, ["icp_into", "prepare", "Vec::new"]);
    }

    // ---- atomic-ordering ----

    #[test]
    fn ordering_without_rationale_is_flagged_in_scope_only() {
        let bad = "fn load_head(&self) -> u64 { self.head.load(Ordering::Acquire) }\n";
        let f = lint_source("crates/trace/src/ring.rs", bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "atomic-ordering");
        assert!(f[0].message.contains("ORDERING:"));
        // The same code outside the audited files is not atomic-ordering's
        // business.
        assert!(lint_source("crates/harness/src/roi.rs", bad)
            .iter()
            .all(|x| x.rule != "atomic-ordering"));
    }

    #[test]
    fn ordering_with_rationale_is_clean() {
        let good = "fn load_head(&self) -> u64 {\n    // ORDERING: Acquire pairs with the producer's Release store of tail.\n    self.head.load(Ordering::Acquire)\n}\n";
        assert!(lint_source("crates/trace/src/ring.rs", good).is_empty());
    }

    #[test]
    fn seqcst_denied_even_with_rationale() {
        let src = "fn fence(&self) {\n    // ORDERING: full fence on shutdown.\n    self.flag.store(true, Ordering::SeqCst);\n}\n";
        let f = lint_source("crates/harness/src/collector.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("SeqCst"));
        let allowed = "fn fence(&self) {\n    // ORDERING: full fence on shutdown.\n    // rtr-lint: allow(atomic-ordering) -- shutdown is cold; SeqCst keeps the proof trivial\n    self.flag.store(true, Ordering::SeqCst);\n}\n";
        let f = lint_source("crates/harness/src/collector.rs", allowed);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].allowed.is_some());
    }

    // ---- trace-gated ----

    #[test]
    fn ungated_emission_is_flagged_and_gated_is_clean() {
        let bad = "fn step(&mut self, trace: &mut T) { trace.read(self.addr); }\n";
        let f = kernel(bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "trace-gated");
        let good =
            "fn step(&mut self, trace: &mut T) { if trace.enabled() { trace.read(self.addr); } }\n";
        assert!(kernel(good).is_empty());
    }

    #[test]
    fn negated_early_return_guard_covers_the_rest() {
        let src = "fn step(&mut self, trace: &mut T) {\n  if !trace.enabled() { return; }\n  trace.read(self.addr);\n  trace.write(self.addr);\n}\n";
        assert!(kernel(src).is_empty());
    }

    #[test]
    fn bound_guard_variable_is_recognized() {
        let src = "fn step(&mut self, t: &mut T) {\n  let traced = self.trace.borrow().enabled();\n  if traced { t.read(self.addr); }\n  t.write(self.addr);\n}\n";
        let f = kernel(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4, "only the un-gated write: {f:?}");
    }

    #[test]
    fn helper_called_only_from_guarded_positions_is_clean() {
        let src = "fn step(&mut self, trace: &mut T) {\n  if trace.enabled() { self.emit(trace); }\n}\nfn emit(&mut self, trace: &mut T) { trace.read(self.addr); }\n";
        assert!(kernel(src).is_empty());
    }

    #[test]
    fn helper_with_one_unguarded_caller_is_flagged() {
        let src = "fn step(&mut self, trace: &mut T) {\n  if trace.enabled() { self.emit(trace); }\n}\nfn sloppy(&mut self, trace: &mut T) { self.emit(trace); }\nfn emit(&mut self, trace: &mut T) { trace.read(self.addr); }\n";
        let f = kernel(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "trace-gated");
        assert!(f[0].message.contains("emit"));
    }

    #[test]
    fn non_trace_receivers_are_ignored() {
        let src =
            "fn step(&mut self, file: &mut File) { file.read(&mut buf); socket.write(&buf); }\n";
        assert!(kernel(src).is_empty());
    }

    #[test]
    fn core_trace_wiring_is_exempt_from_gating() {
        let src = "fn run(&mut self, trace: &mut T) { trace.read(0); }\n";
        assert!(lint_source("crates/core/src/trace.rs", src)
            .iter()
            .all(|x| x.rule != "trace-gated"));
    }

    // ---- explain ----

    #[test]
    fn every_rule_has_an_explanation() {
        for rule in RULES {
            assert!(explain(rule).is_some(), "{rule}");
        }
        assert!(explain("allow-syntax").is_some());
        assert!(explain("made-up").is_none());
    }
}

//! A small purpose-built Rust lexer.
//!
//! The rules in this crate are lexical: they match tokens like `HashMap`
//! or `Instant::now` against source text. Doing that on raw source would
//! misfire on comments (`// the legacy HashMap path`) and string literals
//! (`"Instant::now"`), so every file is first *scrubbed*: comment and
//! literal bytes are blanked to spaces (newlines preserved, so byte
//! offsets and line numbers stay true to the original file). Brace and
//! parenthesis matching on the scrubbed text is then reliable, which is
//! what the span-scoped rules (`hot-alloc`, `par-rng`) build on.
//!
//! The lexer deliberately does **not** build an AST: the suite builds
//! fully offline and must not grow a parser dependency. The trade-off is
//! that rules are approximate — which is fine, because every rule has an
//! explicit escape hatch (`// rtr-lint: allow(<rule>) -- <reason>`).

/// An `// rtr-lint: allow(<rule>) -- <reason>` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the annotation sits on. It suppresses findings on its
    /// own line (trailing comment) and on the following line (standalone
    /// comment above the offending statement).
    pub line: usize,
    /// Rule identifier inside `allow(...)`, e.g. `nondet-iter`.
    pub rule: String,
    /// Justification after `--`. Empty when the author forgot one — the
    /// engine turns that into an un-allowable `allow-syntax` finding.
    pub reason: String,
}

/// A source file after comment/literal scrubbing.
#[derive(Debug, Clone)]
pub struct Scrubbed {
    /// Original text, kept for `SAFETY:` comment lookups and snippets.
    pub original: String,
    /// Same byte length as `original`: comments and string/char literal
    /// bytes replaced with spaces, newlines kept.
    pub text: String,
    /// Allow annotations harvested from the comments while scrubbing.
    pub allows: Vec<Allow>,
}

/// Scrubs `source`: blanks comments and literals, harvesting `rtr-lint:`
/// annotations from the comments as it goes.
pub fn scrub(source: &str) -> Scrubbed {
    let bytes = source.as_bytes();
    let mut out = bytes.to_vec();
    let mut allows = Vec::new();
    let mut i = 0usize;

    // Blank `out[from..to]` to spaces, preserving line breaks.
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for b in &mut out[from..to] {
            if *b != b'\n' && *b != b'\r' {
                *b = b' ';
            }
        }
    };

    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();
        if b == b'/' && next == Some(b'/') {
            // Line comment: harvest an annotation, then blank it.
            let end = source[i..].find('\n').map(|n| i + n).unwrap_or(bytes.len());
            if let Some(allow) = parse_allow(&source[i + 2..end], line_of(source, i)) {
                allows.push(allow);
            }
            blank(&mut out, i, end);
            i = end;
        } else if b == b'/' && next == Some(b'*') {
            // Block comment (nesting, as in Rust).
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < bytes.len() && depth > 0 {
                if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            blank(&mut out, i, j);
            i = j;
        } else if b == b'"' {
            let end = skip_string(bytes, i);
            blank(&mut out, i, end);
            i = end;
        } else if (b == b'r' || b == b'b') && !is_ident_byte(bytes.get(i.wrapping_sub(1)).copied())
        {
            // Possible raw/byte string: r"..", r#".."#, b"..", br#".."#.
            if let Some(end) = skip_raw_or_byte_string(bytes, i) {
                blank(&mut out, i, end);
                i = end;
            } else {
                i += 1;
            }
        } else if b == b'\'' {
            // Char literal vs lifetime.
            if let Some(end) = skip_char_literal(bytes, i) {
                blank(&mut out, i, end);
                i = end;
            } else {
                i += 1; // Lifetime: leave as-is.
            }
        } else {
            i += 1;
        }
    }

    Scrubbed {
        original: source.to_owned(),
        text: String::from_utf8(out).expect("scrubbing preserves UTF-8: whole spans are blanked"),
        allows,
    }
}

fn is_ident_byte(b: Option<u8>) -> bool {
    matches!(b, Some(c) if c == b'_' || c.is_ascii_alphanumeric())
}

/// Skips a `"..."` literal starting at the opening quote; returns the
/// offset one past the closing quote.
fn skip_string(bytes: &[u8], start: usize) -> usize {
    let mut j = start + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    bytes.len()
}

/// Skips `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'` starting at
/// the `r`/`b`; `None` when the position is not actually a literal.
fn skip_raw_or_byte_string(bytes: &[u8], start: usize) -> Option<usize> {
    let mut j = start + 1;
    if bytes[start] == b'b' {
        match bytes.get(j) {
            Some(b'\'') => return skip_char_literal(bytes, j),
            Some(b'"') => return Some(skip_string(bytes, j)),
            Some(b'r') => j += 1,
            _ => return None,
        }
    }
    // Raw string: count hashes.
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&b'"') {
        return None;
    }
    j += 1;
    // Scan for `"` followed by `hashes` hashes.
    while j < bytes.len() {
        if bytes[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(k) == Some(&b'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some(k);
            }
        }
        j += 1;
    }
    Some(bytes.len())
}

/// Distinguishes `'x'` / `'\n'` char literals from `'a` lifetimes.
/// Returns the end offset for a literal, `None` for a lifetime.
fn skip_char_literal(bytes: &[u8], start: usize) -> Option<usize> {
    match bytes.get(start + 1) {
        Some(b'\\') => {
            // Escaped char: scan to the closing quote.
            let mut j = start + 2;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'\'' => return Some(j + 1),
                    _ => j += 1,
                }
            }
            Some(bytes.len())
        }
        Some(_) => {
            // `'c'` where c may be multi-byte: find the closing quote
            // within the next handful of bytes; otherwise it's a lifetime.
            let limit = (start + 6).min(bytes.len());
            for (j, &b) in bytes.iter().enumerate().take(limit).skip(start + 2) {
                if b == b'\'' {
                    return Some(j + 1);
                }
                if b == b'\n' || b == b' ' {
                    return None;
                }
            }
            None
        }
        None => None,
    }
}

/// Parses one comment body for `rtr-lint: allow(<rule>) -- <reason>`.
fn parse_allow(comment: &str, line: usize) -> Option<Allow> {
    let t = comment.trim_start_matches(['/', '!']).trim_start();
    let rest = t.strip_prefix("rtr-lint:")?.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_owned();
    let tail = rest[close + 1..].trim_start();
    let reason = tail
        .strip_prefix("--")
        .map(|r| r.trim().to_owned())
        .unwrap_or_default();
    Some(Allow { line, rule, reason })
}

/// 1-based line number of byte `offset` in `text`.
pub fn line_of(text: &str, offset: usize) -> usize {
    text.as_bytes()[..offset.min(text.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// Byte offsets of every identifier-boundary occurrence of `token`.
///
/// A match requires that the bytes immediately before and after are not
/// identifier characters, so `HashMap` does not match `MyHashMapLike` and
/// `unsafe` does not match `unsafe_code`.
pub fn token_positions(text: &str, token: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let first_ident = token
        .as_bytes()
        .first()
        .is_some_and(|&b| b == b'_' || b.is_ascii_alphanumeric());
    let last_ident = token
        .as_bytes()
        .last()
        .is_some_and(|&b| b == b'_' || b.is_ascii_alphanumeric());
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = text[from..].find(token) {
        let at = from + pos;
        let before_ok = !first_ident || !is_ident_byte(at.checked_sub(1).map(|p| bytes[p]));
        let after_ok = !last_ident || !is_ident_byte(bytes.get(at + token.len()).copied());
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + token.len().max(1);
    }
    out
}

/// Given the offset of an opening delimiter in scrubbed text, returns the
/// offset of its matching closing delimiter.
pub fn matching_delim(text: &str, open_at: usize, open: u8, close: u8) -> Option<usize> {
    let bytes = text.as_bytes();
    debug_assert_eq!(bytes[open_at], open);
    let mut depth = 0usize;
    for (j, &b) in bytes.iter().enumerate().skip(open_at) {
        if b == open {
            depth += 1;
        } else if b == close {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// A brace-matched item span in scrubbed text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the item keyword (`fn` / `impl`).
    pub start: usize,
    /// Byte offset one past the closing brace.
    pub end: usize,
}

impl Span {
    /// Returns `true` when `offset` lies inside the span.
    pub fn contains(&self, offset: usize) -> bool {
        (self.start..self.end).contains(&offset)
    }
}

/// Reads the identifier starting at `at` (skipping leading whitespace).
fn ident_at(text: &str, at: usize) -> (String, usize) {
    let bytes = text.as_bytes();
    let mut j = at;
    while j < bytes.len() && (bytes[j] == b' ' || bytes[j] == b'\n' || bytes[j] == b'\r') {
        j += 1;
    }
    let start = j;
    while j < bytes.len() && is_ident_byte(Some(bytes[j])) {
        j += 1;
    }
    (text[start..j].to_owned(), j)
}

/// `true` when a parameter list's first token sequence is a `self`
/// receiver: `self`, `mut self`, `&self`, `&mut self`, `&'a self`,
/// `self: Pin<..>` — i.e. the function is a method.
fn first_param_is_self(params: &str) -> bool {
    let mut rest = params.trim_start();
    rest = rest.strip_prefix('&').unwrap_or(rest).trim_start();
    if let Some(tail) = rest.strip_prefix('\'') {
        // Skip the lifetime name.
        let end = tail
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(tail.len());
        rest = tail[end..].trim_start();
    }
    rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    rest.strip_prefix("self")
        .is_some_and(|t| t.is_empty() || t.starts_with([',', ':', ')', ' ']))
}

/// One `fn` item with a body, as enumerated by [`all_fns`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Span from the `fn` keyword to one past the closing brace.
    pub span: Span,
    /// Byte offset of the body's opening `{` — call extraction and guard
    /// analysis scan from here so the signature never matches.
    pub body_start: usize,
    /// `true` when the first parameter is a `self` receiver (the index's
    /// method-vs-free-function distinction).
    pub has_self: bool,
}

/// One `impl` block, as enumerated by [`all_impls`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplItem {
    /// Header text between `impl` and the opening brace (generics, the
    /// trait, the implemented type).
    pub header: String,
    /// Span from the `impl` keyword to one past the closing brace.
    pub span: Span,
}

/// Enumerates every `fn` item that has a body, in source order.
///
/// Signatures without bodies (trait method declarations) are skipped.
/// This is the single lex-derived item walk the whole rule engine shares:
/// per-rule span selections ([`fn_spans`]) and the interprocedural index
/// are both filters over its result.
pub fn all_fns(text: &str) -> Vec<FnItem> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    for at in token_positions(text, "fn") {
        let (name, after) = ident_at(text, at + 2);
        if name.is_empty() {
            continue;
        }
        // Scan from the end of the name to the body's `{`, or `;` for a
        // bodiless declaration. Parens/brackets in the signature (args,
        // where-clauses) never contain braces, so the first `{` at this
        // level opens the body.
        let mut j = after;
        while j < bytes.len() && bytes[j] != b'{' && bytes[j] != b';' {
            j += 1;
        }
        if j >= bytes.len() || bytes[j] == b';' {
            continue;
        }
        let has_self = text[after..j]
            .find('(')
            .is_some_and(|p| first_param_is_self(&text[after + p + 1..j]));
        if let Some(close) = matching_delim(text, j, b'{', b'}') {
            out.push(FnItem {
                name,
                span: Span {
                    start: at,
                    end: close + 1,
                },
                body_start: j,
                has_self,
            });
        }
    }
    out
}

/// Brace-matched spans of every `fn` item whose name satisfies `select`,
/// paired with the function name. Filter over [`all_fns`].
pub fn fn_spans(text: &str, select: impl Fn(&str) -> bool) -> Vec<(String, Span)> {
    all_fns(text)
        .into_iter()
        .filter(|f| select(&f.name))
        .map(|f| (f.name, f.span))
        .collect()
}

/// Enumerates every `impl` block, in source order.
pub fn all_impls(text: &str) -> Vec<ImplItem> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    for at in token_positions(text, "impl") {
        let mut j = at + 4;
        while j < bytes.len() && bytes[j] != b'{' && bytes[j] != b';' {
            j += 1;
        }
        if j >= bytes.len() || bytes[j] == b';' {
            continue;
        }
        if let Some(close) = matching_delim(text, j, b'{', b'}') {
            out.push(ImplItem {
                header: text[at + 4..j].to_owned(),
                span: Span {
                    start: at,
                    end: close + 1,
                },
            });
        }
    }
    out
}

/// Brace-matched spans of every `impl` block whose header (the text
/// between `impl` and `{`) satisfies `select`. Filter over [`all_impls`].
pub fn impl_spans(text: &str, select: impl Fn(&str) -> bool) -> Vec<Span> {
    all_impls(text)
        .into_iter()
        .filter(|i| select(&i.header))
        .map(|i| i.span)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let a = \"HashMap\"; // HashMap here\nlet b = 1; /* Instant::now */";
        let s = scrub(src);
        assert_eq!(s.text.len(), src.len());
        assert!(!s.text.contains("HashMap"));
        assert!(!s.text.contains("Instant"));
        assert!(s.text.contains("let b = 1;"));
    }

    #[test]
    fn raw_strings_and_chars_are_blanked_lifetimes_kept() {
        let src = "fn f<'a>(x: &'a str) { let c = '{'; let r = r#\"vec![\"#; }";
        let s = scrub(src);
        assert!(!s.text.contains("vec!"));
        assert!(s.text.contains('{'), "outer braces kept");
        assert!(s.text.contains("<'a>"), "lifetime preserved: {}", s.text);
        // The blanked char literal must not unbalance brace matching.
        let open = s.text.find('{').unwrap();
        assert!(matching_delim(&s.text, open, b'{', b'}').is_some());
    }

    #[test]
    fn allow_annotations_are_harvested() {
        let src = "// rtr-lint: allow(nondet-iter) -- keyed lookups only\nuse x;\n";
        let s = scrub(src);
        assert_eq!(s.allows.len(), 1);
        assert_eq!(s.allows[0].rule, "nondet-iter");
        assert_eq!(s.allows[0].reason, "keyed lookups only");
        assert_eq!(s.allows[0].line, 1);
    }

    #[test]
    fn allow_without_reason_has_empty_reason() {
        let s = scrub("let x = 1; // rtr-lint: allow(wall-clock)\n");
        assert_eq!(s.allows.len(), 1);
        assert!(s.allows[0].reason.is_empty());
    }

    #[test]
    fn token_positions_respect_ident_boundaries() {
        let text = "HashMap MyHashMap HashMapx x.HashMap::new";
        let hits = token_positions(text, "HashMap");
        assert_eq!(hits.len(), 2);
        assert_eq!(line_of(text, hits[0]), 1);
    }

    #[test]
    fn fn_spans_find_into_functions() {
        let text = "fn mul_into(a: &A) -> B { inner() } fn other() { vec![] }";
        let spans = fn_spans(text, |n| n.ends_with("_into"));
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].0, "mul_into");
        assert!(text[spans[0].1.start..spans[0].1.end].contains("inner"));
        assert!(!text[spans[0].1.start..spans[0].1.end].contains("vec!"));
    }

    #[test]
    fn trait_declarations_without_bodies_are_skipped() {
        let text = "trait T { fn solve_into(&self, out: &mut V); } ";
        assert!(fn_spans(text, |n| n.ends_with("_into")).is_empty());
    }

    #[test]
    fn impl_spans_match_scratch_headers() {
        let text = "impl IcpScratch { fn step(&mut self) {} } impl Other { }";
        let spans = impl_spans(text, |h| h.contains("Scratch"));
        assert_eq!(spans.len(), 1);
        assert!(text[spans[0].start..spans[0].end].contains("step"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let s = scrub("/* outer /* inner */ still comment */ let x = 1;");
        assert!(s.text.contains("let x = 1;"));
        assert!(!s.text.contains("inner"));
    }
}

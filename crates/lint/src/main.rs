//! `rtr-lint` CLI: walks every `crates/*/src/**/*.rs` file and crate
//! `Cargo.toml`, runs the rule engine, prints human-readable findings,
//! and writes `LINT_report.json`.
//!
//! ```text
//! rtr-lint [--root <dir>] [--report <path>] [--deny]
//! ```
//!
//! `--deny` turns any un-allowed finding into a non-zero exit (the CI
//! gate). Allowed findings are always reported with their reasons but
//! never fail the run.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rtr_lint::{lint_source, Finding, Report};

struct Args {
    root: PathBuf,
    report: Option<PathBuf>,
    deny: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut report = None;
    let mut deny = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(it.next().ok_or("--root needs a directory argument")?);
            }
            "--report" => {
                report = Some(PathBuf::from(
                    it.next().ok_or("--report needs a path argument")?,
                ));
            }
            "--deny" => deny = true,
            "--help" | "-h" => {
                println!("usage: rtr-lint [--root <dir>] [--report <path>] [--deny]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args { root, report, deny })
}

/// Collects every `.rs` file under `crates/*/src/` plus each crate's
/// `Cargo.toml` (the `layering` rule checks manifests too), sorted so
/// output and the JSON report are stable across filesystems.
fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            out.push(manifest);
        }
        let src = dir.join("src");
        if src.is_dir() {
            walk(&src, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rtr-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let files = match collect_sources(&args.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("rtr-lint: cannot walk {}/crates: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    let mut findings: Vec<Finding> = Vec::new();
    let mut scanned = 0u64;
    for path in &files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rtr-lint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let rel = path
            .strip_prefix(&args.root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        scanned += 1;
        findings.extend(lint_source(&rel, &source));
    }

    let report = Report {
        version: 1,
        files_scanned: scanned,
        findings,
    };

    let violations = report.violations().count();
    let allowed = report.allowed().count();

    for f in &report.findings {
        println!("{f}");
    }
    println!(
        "rtr-lint: {scanned} files scanned, {violations} violation{}, {allowed} allowed",
        if violations == 1 { "" } else { "s" }
    );
    if allowed > 0 {
        println!("allow annotations in effect:");
        for f in report.allowed() {
            println!(
                "  {}:{} [{}] -- {}",
                f.file,
                f.line,
                f.rule,
                f.allowed.as_deref().unwrap_or("")
            );
        }
    }

    let report_path = args
        .report
        .unwrap_or_else(|| args.root.join("LINT_report.json"));
    if let Err(e) = std::fs::write(&report_path, report.to_json()) {
        eprintln!("rtr-lint: cannot write {}: {e}", report_path.display());
        return ExitCode::from(2);
    }
    println!("report written to {}", report_path.display());

    if args.deny && violations > 0 {
        eprintln!("rtr-lint: --deny set and {violations} un-allowed finding(s) present");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

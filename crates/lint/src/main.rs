//! `rtr-lint` CLI: walks every `crates/*/src/**/*.rs` file and crate
//! `Cargo.toml`, runs the workspace rule engine (one lex per file,
//! interprocedural phase included), prints human-readable findings, and
//! writes `LINT_report.json`.
//!
//! ```text
//! rtr-lint [--root <dir>] [--report <path>] [--baseline <path>] [--deny]
//! rtr-lint --explain <rule>
//! ```
//!
//! `--deny` turns any un-allowed finding into a non-zero exit (the CI
//! gate). Allowed findings are always reported with their reasons but
//! never fail the run. `--baseline <path>` byte-compares the freshly
//! generated report against a committed one (ignoring the volatile
//! `elapsed_ms` line) and fails on any difference — so new findings
//! *and* silently vanished coverage both break the build. `--explain`
//! prints a rule's one-paragraph spec and exits.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use rtr_lint::{explain, lint_workspace, Report};

struct Args {
    root: PathBuf,
    report: Option<PathBuf>,
    baseline: Option<PathBuf>,
    deny: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut report = None;
    let mut baseline = None;
    let mut deny = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(it.next().ok_or("--root needs a directory argument")?);
            }
            "--report" => {
                report = Some(PathBuf::from(
                    it.next().ok_or("--report needs a path argument")?,
                ));
            }
            "--baseline" => {
                baseline = Some(PathBuf::from(
                    it.next().ok_or("--baseline needs a path argument")?,
                ));
            }
            "--explain" => {
                let rule = it.next().ok_or("--explain needs a rule name")?;
                match explain(&rule) {
                    Some(spec) => {
                        println!("{spec}");
                        println!();
                        println!(
                            "suppress with: // rtr-lint: allow({rule}) -- <reason> \
                             (covers its own line and the next non-attribute line)"
                        );
                        std::process::exit(0);
                    }
                    None => {
                        return Err(format!(
                            "unknown rule {rule:?}; known rules: {}",
                            rtr_lint::RULES.join(", ")
                        ))
                    }
                }
            }
            "--deny" => deny = true,
            "--help" | "-h" => {
                println!(
                    "usage: rtr-lint [--root <dir>] [--report <path>] [--baseline <path>] [--deny]\n       rtr-lint --explain <rule>"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args {
        root,
        report,
        baseline,
        deny,
    })
}

/// Collects every `.rs` file under `crates/*/src/` plus each crate's
/// `Cargo.toml` (the `layering` rule checks manifests too), sorted so
/// output and the JSON report are stable across filesystems.
fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            out.push(manifest);
        }
        let src = dir.join("src");
        if src.is_dir() {
            walk(&src, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Strips the volatile timing line so two reports from different runs
/// over identical sources compare byte-equal.
fn strip_elapsed(text: &str) -> String {
    text.lines()
        .filter(|l| !l.contains("\"elapsed_ms\""))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Byte-compares the fresh report against the committed baseline,
/// printing the first few differing lines on mismatch.
fn baseline_matches(fresh: &str, baseline: &str) -> bool {
    let fresh = strip_elapsed(fresh);
    let baseline = strip_elapsed(baseline);
    if fresh == baseline {
        return true;
    }
    eprintln!("rtr-lint: report differs from the committed baseline:");
    let f: Vec<&str> = fresh.lines().collect();
    let b: Vec<&str> = baseline.lines().collect();
    let mut shown = 0;
    for i in 0..f.len().max(b.len()) {
        let fl = f.get(i).copied().unwrap_or("<missing>");
        let bl = b.get(i).copied().unwrap_or("<missing>");
        if fl != bl {
            eprintln!("  line {}:", i + 1);
            eprintln!("    baseline: {bl}");
            eprintln!("    fresh:    {fl}");
            shown += 1;
            if shown >= 5 {
                eprintln!("  ... (further differences elided)");
                break;
            }
        }
    }
    eprintln!(
        "rtr-lint: if the change is intentional, regenerate the baseline with \
         `cargo run -p rtr-lint` and commit LINT_report.json"
    );
    false
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rtr-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let started = Instant::now();
    let files = match collect_sources(&args.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("rtr-lint: cannot walk {}/crates: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for path in &files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rtr-lint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let rel = path
            .strip_prefix(&args.root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, source));
    }

    let findings = lint_workspace(&sources);
    let elapsed_ms = started.elapsed().as_millis() as u64;

    let report = Report {
        version: 2,
        files_scanned: sources.len() as u64,
        elapsed_ms,
        findings,
    };

    let violations = report.violations().count();
    let allowed = report.allowed().count();
    let scanned = report.files_scanned;

    for f in &report.findings {
        println!("{f}");
    }
    println!(
        "rtr-lint: {scanned} files scanned in {elapsed_ms} ms, {violations} violation{}, {allowed} allowed",
        if violations == 1 { "" } else { "s" }
    );
    if allowed > 0 {
        println!("allow annotations in effect:");
        for f in report.allowed() {
            println!(
                "  {}:{} [{}] -- {}",
                f.file,
                f.line,
                f.rule,
                f.allowed.as_deref().unwrap_or("")
            );
        }
    }

    let json = report.to_json();
    let report_path = args
        .report
        .unwrap_or_else(|| args.root.join("LINT_report.json"));
    if let Err(e) = std::fs::write(&report_path, &json) {
        eprintln!("rtr-lint: cannot write {}: {e}", report_path.display());
        return ExitCode::from(2);
    }
    println!("report written to {}", report_path.display());

    if let Some(baseline_path) = &args.baseline {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!(
                    "rtr-lint: cannot read baseline {}: {e}",
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
        };
        if !baseline_matches(&json, &baseline) {
            return ExitCode::FAILURE;
        }
        println!("baseline match: {}", baseline_path.display());
    }

    if args.deny && violations > 0 {
        eprintln!("rtr-lint: --deny set and {violations} un-allowed finding(s) present");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

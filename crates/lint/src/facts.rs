//! Phase 2 of the interprocedural analysis: transitive facts over the
//! call graph.
//!
//! Three boolean facts are computed per workspace fn — `allocates`,
//! `reads-clock`, `touches-nondet-iter` — each seeded by token patterns
//! in the fn's own body (the same needles the lexical rules use) and
//! propagated caller-ward over resolved call edges to a fixpoint: a fn
//! holds a fact iff its body matches a seed or any resolved callee holds
//! it. Every derived fact keeps a *witness* (the seeding token, or the
//! call site + callee it came through), so a finding can print the full
//! offending chain (`a_into -> helper -> Vec::new`). Witnesses form a
//! DAG by construction — a `Via` witness always points at a fn whose
//! fact was established strictly earlier — so chain reconstruction
//! terminates.

use crate::callgraph::CallGraph;
use crate::index::{FnId, WorkspaceIndex};

/// Why a fn holds a fact.
#[derive(Debug, Clone)]
pub enum Origin {
    /// The fn's own body contains the needle at `offset`.
    Direct {
        /// Absolute byte offset of the needle in the file's text.
        offset: usize,
        /// The matched token pattern.
        needle: &'static str,
    },
    /// Inherited from `callee` through the call at `site_offset`.
    Via {
        /// Absolute byte offset of the inheriting call site.
        site_offset: usize,
        /// The callee the fact came through.
        callee: FnId,
    },
}

/// One fact lattice: `Some(origin)` iff the fn holds the fact.
pub type Fact = Vec<Option<Origin>>;

/// A structural barrier: fns matching one of these never *hold* the
/// fact — their body tokens are not seeded and the fixpoint never
/// assigns them an inherited origin, so nothing propagates through them
/// to callers. Barriers express "this fn's needle hits are machinery,
/// not steady-state work": the thread-pool fan-out that clones a range
/// and collects join handles once per parallel region, or the profiler
/// types that *are* the sanctioned timing channel. A barrier masks the
/// whole fn, including any genuinely-hot callees below it, so keep the
/// list short and the match as specific as possible.
pub struct Barrier {
    /// Workspace crate the fn must live in (`crate_of` name).
    pub krate: &'static str,
    /// Required `impl` type, or `None` to match free fns and any impl.
    pub impl_type: Option<&'static str>,
    /// Required fn name, or `None` to match every fn of the impl.
    pub name: Option<&'static str>,
}

impl Barrier {
    /// Does this barrier cover `info` (a fn in crate `krate`)?
    fn matches(&self, krate: &str, impl_type: Option<&str>, name: &str) -> bool {
        self.krate == krate
            && self.impl_type.is_none_or(|t| impl_type == Some(t))
            && self.name.is_none_or(|n| name == n)
    }
}

/// Needle lists seeding each fact; kept as parameters so the rule layer
/// owns the single source of truth for token patterns.
pub struct Seeds<'a> {
    /// Token patterns seeding the `allocates` fact.
    pub alloc: &'a [&'static str],
    /// Token patterns seeding the `reads-clock` fact.
    pub clock: &'a [&'static str],
    /// Token patterns seeding the `touches-nondet-iter` fact.
    pub nondet: &'a [&'static str],
    /// Structural barriers for the `allocates` fact.
    pub alloc_barriers: &'a [Barrier],
    /// Structural barriers for the `reads-clock` fact.
    pub clock_barriers: &'a [Barrier],
}

/// The computed transitive facts for every workspace fn.
pub struct Facts {
    /// Fn may allocate on the heap, directly or through a callee.
    pub allocates: Fact,
    /// Fn may read the wall clock, directly or through a callee.
    pub reads_clock: Fact,
    /// Fn may touch a hash-ordered container, directly or transitively.
    pub nondet_iter: Fact,
}

impl Facts {
    /// Computes all three facts over the resolved call graph.
    pub fn compute(index: &WorkspaceIndex, graph: &CallGraph, seeds: &Seeds) -> Facts {
        Facts {
            allocates: propagate(index, graph, seeds.alloc, seeds.alloc_barriers),
            reads_clock: propagate(index, graph, seeds.clock, seeds.clock_barriers),
            nondet_iter: propagate(index, graph, seeds.nondet, &[]),
        }
    }
}

/// Seeds one fact from body tokens, then iterates the edge list to a
/// fixpoint. Facts only ever flip `None` → `Some` and the edge order is
/// fixed, so the result (including witnesses) is deterministic. Fns
/// covered by a [`Barrier`] are held at `None` throughout: not seeded,
/// never assigned by the fixpoint, hence opaque to their callers.
fn propagate(
    index: &WorkspaceIndex,
    graph: &CallGraph,
    needles: &[&'static str],
    barriers: &[Barrier],
) -> Fact {
    let barred: Vec<bool> = index
        .fns
        .iter()
        .map(|info| {
            let krate = index.files[info.file].krate.as_str();
            barriers
                .iter()
                .any(|b| b.matches(krate, info.impl_type.as_deref(), &info.name))
        })
        .collect();
    let mut fact: Fact = vec![None; index.fns.len()];
    for (id, info) in index.fns.iter().enumerate() {
        if barred[id] {
            continue;
        }
        let body = &index.files[info.file].scrubbed.text[info.body_start..info.span.end];
        let mut best: Option<(usize, &'static str)> = None;
        for needle in needles {
            if let Some(pos) = body.find(needle) {
                let abs = info.body_start + pos;
                if best.is_none_or(|(b, _)| abs < b) {
                    best = Some((abs, needle));
                }
            }
        }
        if let Some((offset, needle)) = best {
            fact[id] = Some(Origin::Direct { offset, needle });
        }
    }
    loop {
        let mut changed = false;
        for edge in &graph.edges {
            if !barred[edge.caller] && fact[edge.caller].is_none() && fact[edge.callee].is_some() {
                let site = &index.calls[edge.caller][edge.site];
                fact[edge.caller] = Some(Origin::Via {
                    site_offset: site.offset,
                    callee: edge.callee,
                });
                changed = true;
            }
        }
        if !changed {
            return fact;
        }
    }
}

/// Renders a needle for chain evidence: `"Vec::new("` → `Vec::new`,
/// `".clone()"` → `clone()`.
pub fn pretty_needle(needle: &str) -> String {
    let s = needle.trim_start_matches('.');
    let s = s.strip_suffix("::<").unwrap_or(s);
    let s = if s.ends_with('(') && !s.ends_with("()") {
        &s[..s.len() - 1]
    } else {
        s
    };
    s.trim_end_matches('!').to_owned()
}

/// The offending call chain from `start` down to the seeding token:
/// qualified fn names, ending with the pretty-printed needle. `start`
/// must hold the fact.
pub fn chain(index: &WorkspaceIndex, fact: &Fact, start: FnId) -> Vec<String> {
    let mut out = vec![index.fns[start].qualified_name()];
    let mut cur = start;
    // Witnesses are acyclic, but cap the walk defensively.
    for _ in 0..64 {
        match &fact[cur] {
            Some(Origin::Direct { needle, .. }) => {
                out.push(pretty_needle(needle));
                return out;
            }
            Some(Origin::Via { callee, .. }) => {
                out.push(index.fns[*callee].qualified_name());
                cur = *callee;
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::FileAnalysis;

    const ALLOC: [&str; 3] = ["Vec::new(", "vec!", ".clone()"];
    const CLOCK: [&str; 2] = ["Instant::now", "SystemTime"];
    const NONDET: [&str; 2] = ["HashMap", "HashSet"];

    fn facts_with_barriers(src: &str, alloc_barriers: &[Barrier]) -> (WorkspaceIndex, Facts) {
        let idx = WorkspaceIndex::build(vec![FileAnalysis::new("crates/geom/src/x.rs", src)]);
        let graph = CallGraph::build(&idx);
        let seeds = Seeds {
            alloc: &ALLOC,
            clock: &CLOCK,
            nondet: &NONDET,
            alloc_barriers,
            clock_barriers: &[],
        };
        let facts = Facts::compute(&idx, &graph, &seeds);
        (idx, facts)
    }

    fn facts_for(src: &str) -> (WorkspaceIndex, Facts) {
        facts_with_barriers(src, &[])
    }
    use crate::callgraph::CallGraph;

    #[test]
    fn two_hop_chain_is_reconstructed() {
        let src = "fn entry() { middle(); }\nfn middle() { leaf(); }\nfn leaf() -> Vec<u32> { Vec::new() }\n";
        let (idx, facts) = facts_for(src);
        let entry = idx.fns.iter().position(|f| f.name == "entry").unwrap();
        assert!(facts.allocates[entry].is_some());
        assert_eq!(
            chain(&idx, &facts.allocates, entry),
            ["entry", "middle", "leaf", "Vec::new"]
        );
    }

    #[test]
    fn facts_do_not_leak_without_edges() {
        let src = "fn clean(x: u32) -> u32 { x + 1 }\nfn dirty() { std::time::Instant::now(); }\n";
        let (idx, facts) = facts_for(src);
        let clean = idx.fns.iter().position(|f| f.name == "clean").unwrap();
        let dirty = idx.fns.iter().position(|f| f.name == "dirty").unwrap();
        assert!(facts.reads_clock[clean].is_none());
        assert!(facts.reads_clock[dirty].is_some());
    }

    #[test]
    fn recursive_fns_terminate() {
        let src = "fn a() { b(); }\nfn b() { a(); vec![1]; }\n";
        let (idx, facts) = facts_for(src);
        let a = idx.fns.iter().position(|f| f.name == "a").unwrap();
        assert_eq!(chain(&idx, &facts.allocates, a), ["a", "b", "vec"]);
    }

    #[test]
    fn barred_fns_never_hold_or_propagate_the_fact() {
        let src = "impl Pool {\n  fn fan_out(&self) { self.spawn_all(); }\n}\nimpl Pool {\n  fn spawn_all(&self) { let h = self.handles.clone(); }\n}\n";
        let (idx, plain) = facts_with_barriers(src, &[]);
        let fan_out = idx.fns.iter().position(|f| f.name == "fan_out").unwrap();
        let spawn_all = idx.fns.iter().position(|f| f.name == "spawn_all").unwrap();
        assert!(plain.allocates[fan_out].is_some());
        assert!(plain.allocates[spawn_all].is_some());

        let barrier = [Barrier {
            krate: "geom",
            impl_type: Some("Pool"),
            name: Some("spawn_all"),
        }];
        let (idx, barred) = facts_with_barriers(src, &barrier);
        let fan_out = idx.fns.iter().position(|f| f.name == "fan_out").unwrap();
        let spawn_all = idx.fns.iter().position(|f| f.name == "spawn_all").unwrap();
        assert!(barred.allocates[spawn_all].is_none(), "seeding masked");
        assert!(barred.allocates[fan_out].is_none(), "nothing to inherit");
    }

    #[test]
    fn barriers_match_crate_impl_and_name_exactly() {
        let b = Barrier {
            krate: "harness",
            impl_type: Some("Pool"),
            name: Some("par_chunks_mut"),
        };
        assert!(b.matches("harness", Some("Pool"), "par_chunks_mut"));
        assert!(!b.matches("geom", Some("Pool"), "par_chunks_mut"));
        assert!(!b.matches("harness", None, "par_chunks_mut"));
        assert!(!b.matches("harness", Some("Pool"), "par_map"));
        let whole_impl = Barrier {
            krate: "harness",
            impl_type: Some("Profiler"),
            name: None,
        };
        assert!(whole_impl.matches("harness", Some("Profiler"), "hot_start"));
        assert!(whole_impl.matches("harness", Some("Profiler"), "span"));
        assert!(!whole_impl.matches("harness", Some("Roi"), "enter"));
    }

    #[test]
    fn needles_render_cleanly() {
        assert_eq!(pretty_needle("Vec::new("), "Vec::new");
        assert_eq!(pretty_needle(".clone()"), "clone()");
        assert_eq!(pretty_needle(".collect::<"), "collect");
        assert_eq!(pretty_needle("vec!"), "vec");
        assert_eq!(pretty_needle("Instant::now"), "Instant::now");
    }
}

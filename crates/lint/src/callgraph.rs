//! Call-graph construction: name-best-effort resolution of the call
//! sites collected by [`crate::index`] to workspace `fn` items.
//!
//! The resolver is deliberately conservative about *method* calls —
//! `.clone()` on an arbitrary receiver is almost never the workspace's
//! own `clone` — so common std method names are treated as external
//! leaves and everything else requires a workspace fn with a `self`
//! receiver. Bare and `Type::`-qualified calls resolve in tiers
//! (same file, then same crate, then whole workspace) so a `helper()`
//! call binds to the nearest plausible definition. Anything unresolved
//! stays a leaf: it contributes no transitive facts, but qualified
//! external names (`Vec::new`, `Instant::now`) are still caught by the
//! direct token seeds in [`crate::facts`].

use crate::index::{CallSite, FnId, WorkspaceIndex};
use std::collections::BTreeMap;

/// Std/prelude method names that never resolve into the workspace:
/// resolving `.len()` or `.clone()` by name alone would wire unrelated
/// types together and poison the transitive facts.
const COMMON_METHODS: [&str; 55] = [
    "abs",
    // `add` collides across the workspace itself (Profiler::add,
    // Tree::add) besides std's ops::Add; name-only resolution would wire
    // the profiler's publish path to the RRT tree.
    "add",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "borrow",
    "borrow_mut",
    "ceil",
    "chars",
    "clamp",
    "clone",
    "cloned",
    "collect",
    "contains",
    "copied",
    "count",
    "drain",
    "enumerate",
    "eq",
    "extend",
    "fill",
    "filter",
    "floor",
    "fold",
    "get",
    "insert",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "len",
    "lock",
    "map",
    "max",
    "min",
    "next",
    "parse",
    "pop",
    "powi",
    "push",
    "push_str",
    "remove",
    "rev",
    "skip",
    "sort",
    "split",
    "sqrt",
    "starts_with",
    "sum",
    "take",
    "to_owned",
    "to_string",
    "unwrap",
    "zip",
];

/// One resolved call edge: `caller`'s call site (by index into
/// `index.calls[caller]`) resolves to workspace fn `callee`.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// The calling fn.
    pub caller: FnId,
    /// Index into `index.calls[caller]`.
    pub site: usize,
    /// The resolved workspace callee.
    pub callee: FnId,
}

/// The resolved workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// All resolved edges, ordered by (caller, site).
    pub edges: Vec<Edge>,
    /// `outgoing[f]` = indices into `edges` whose caller is `f`.
    pub outgoing: Vec<Vec<usize>>,
    /// `incoming[f]` = indices into `edges` whose callee is `f`.
    pub incoming: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Resolves every call site in the index. A site that matches several
    /// candidates in its best tier gets one edge per candidate (the facts
    /// layer treats any-of as may-reach, which is the sound direction for
    /// a linter).
    pub fn build(index: &WorkspaceIndex) -> CallGraph {
        let maps = Maps::build(index);
        let mut edges = Vec::new();
        for caller in 0..index.fns.len() {
            for (site_idx, site) in index.calls[caller].iter().enumerate() {
                for callee in maps.resolve(index, caller, site) {
                    edges.push(Edge {
                        caller,
                        site: site_idx,
                        callee,
                    });
                }
            }
        }
        let mut outgoing = vec![Vec::new(); index.fns.len()];
        let mut incoming = vec![Vec::new(); index.fns.len()];
        for (i, e) in edges.iter().enumerate() {
            outgoing[e.caller].push(i);
            incoming[e.callee].push(i);
        }
        CallGraph {
            edges,
            outgoing,
            incoming,
        }
    }
}

/// Name-keyed lookup tables; `BTreeMap` keeps resolution deterministic.
struct Maps {
    /// `(impl type, fn name)` → fn ids (associated fns and methods).
    typed: BTreeMap<(String, String), Vec<FnId>>,
    /// Free fns (no impl block) by name.
    free: BTreeMap<String, Vec<FnId>>,
    /// Fns with a `self` receiver by name (method-call candidates).
    methods: BTreeMap<String, Vec<FnId>>,
}

impl Maps {
    fn build(index: &WorkspaceIndex) -> Maps {
        let mut typed: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
        let mut free: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut methods: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (id, info) in index.fns.iter().enumerate() {
            match &info.impl_type {
                Some(t) => typed
                    .entry((t.clone(), info.name.clone()))
                    .or_default()
                    .push(id),
                None => free.entry(info.name.clone()).or_default().push(id),
            }
            if info.has_self {
                methods.entry(info.name.clone()).or_default().push(id);
            }
        }
        Maps {
            typed,
            free,
            methods,
        }
    }

    /// Candidates for one call site; empty = external leaf.
    fn resolve(&self, index: &WorkspaceIndex, caller: FnId, site: &CallSite) -> Vec<FnId> {
        match (&site.qualifier, site.is_method) {
            (Some(q), _) if q == "Self" => {
                let Some(self_ty) = index.self_type_of(caller) else {
                    return Vec::new();
                };
                self.typed
                    .get(&(self_ty.to_owned(), site.name.clone()))
                    .cloned()
                    .unwrap_or_default()
            }
            (Some(q), _) if q.starts_with(|c: char| c.is_ascii_uppercase()) => {
                // `Type::name` — exact (type, name) or external.
                self.typed
                    .get(&(q.clone(), site.name.clone()))
                    .cloned()
                    .unwrap_or_default()
            }
            (Some(_q), _) => {
                // `module::name` — a module-qualified free fn; the module
                // path is not tracked, so fall back to free fns by name
                // with locality tiers.
                tier(index, caller, self.free.get(&site.name))
            }
            (None, true) => {
                if COMMON_METHODS.contains(&site.name.as_str()) {
                    return Vec::new();
                }
                tier(index, caller, self.methods.get(&site.name))
            }
            (None, false) => tier(index, caller, self.free.get(&site.name)),
        }
    }
}

/// Picks the best locality tier from `candidates`: same file beats same
/// crate beats anywhere in the workspace.
fn tier(index: &WorkspaceIndex, caller: FnId, candidates: Option<&Vec<FnId>>) -> Vec<FnId> {
    let Some(cands) = candidates else {
        return Vec::new();
    };
    let caller_file = index.fns[caller].file;
    let caller_crate = &index.files[caller_file].krate;
    let same_file: Vec<FnId> = cands
        .iter()
        .copied()
        .filter(|&c| index.fns[c].file == caller_file)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let same_crate: Vec<FnId> = cands
        .iter()
        .copied()
        .filter(|&c| &index.files[index.fns[c].file].krate == caller_crate)
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    cands.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::FileAnalysis;

    fn graph(files: &[(&str, &str)]) -> (WorkspaceIndex, CallGraph) {
        let idx =
            WorkspaceIndex::build(files.iter().map(|(p, s)| FileAnalysis::new(p, s)).collect());
        let g = CallGraph::build(&idx);
        (idx, g)
    }

    fn edge_names(idx: &WorkspaceIndex, g: &CallGraph) -> Vec<(String, String)> {
        g.edges
            .iter()
            .map(|e| {
                (
                    idx.fns[e.caller].name.clone(),
                    idx.fns[e.callee].name.clone(),
                )
            })
            .collect()
    }

    #[test]
    fn bare_calls_prefer_same_file_then_same_crate() {
        let (idx, g) = graph(&[
            (
                "crates/geom/src/a.rs",
                "fn caller() { helper(); remote(); }\nfn helper() {}\n",
            ),
            ("crates/geom/src/b.rs", "fn helper() {}\nfn remote() {}\n"),
            ("crates/sim/src/c.rs", "fn remote() {}\n"),
        ]);
        let names = edge_names(&idx, &g);
        assert_eq!(names.len(), 2);
        // helper resolves to the same-file definition only.
        let helper_edge = g
            .edges
            .iter()
            .find(|e| idx.fns[e.callee].name == "helper")
            .unwrap();
        assert_eq!(idx.fns[helper_edge.callee].file, 0);
        // remote resolves to the same-crate definition, not sim's.
        let remote_edge = g
            .edges
            .iter()
            .find(|e| idx.fns[e.callee].name == "remote")
            .unwrap();
        assert_eq!(idx.files[idx.fns[remote_edge.callee].file].krate, "geom");
    }

    #[test]
    fn typed_and_self_calls_resolve_exactly() {
        let (idx, g) = graph(&[(
            "crates/geom/src/a.rs",
            "struct Foo;\nimpl Foo {\n  fn new() -> Foo { Foo }\n  fn go(&self) { Self::new(); Foo::other(); }\n  fn other() {}\n}\nimpl Bar {\n  fn new() -> Bar { Bar }\n}\n",
        )]);
        let names = edge_names(&idx, &g);
        assert!(names.contains(&("go".into(), "new".into())));
        assert!(names.contains(&("go".into(), "other".into())));
        // Self::new must bind to Foo::new, not Bar::new.
        let e = g
            .edges
            .iter()
            .find(|e| idx.fns[e.callee].name == "new")
            .unwrap();
        assert_eq!(idx.fns[e.callee].impl_type.as_deref(), Some("Foo"));
        assert_eq!(g.edges.len(), 2);
    }

    #[test]
    fn common_std_methods_stay_external() {
        let (_idx, g) = graph(&[(
            "crates/geom/src/a.rs",
            "struct W;\nimpl W {\n  fn clone(&self) -> W { W }\n  fn go(&self, v: &[u32]) { v.len(); self.clone(); }\n}\n",
        )]);
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn workspace_methods_resolve_when_not_blocklisted() {
        let (idx, g) = graph(&[(
            "crates/trace/src/a.rs",
            "struct Ring;\nimpl Ring {\n  fn publish(&self) {}\n}\nstruct P { ring: Ring }\nimpl P {\n  fn go(&self) { self.ring.publish(); }\n}\n",
        )]);
        let names = edge_names(&idx, &g);
        assert_eq!(names, [("go".to_owned(), "publish".to_owned())]);
    }
}

//! The same two-hop shape with a justified allow at the hot call site:
//! the transitive finding attaches to the entry's call line, so that is
//! where the annotation belongs.

pub fn mul_into(out: &mut Acc) {
    // rtr-lint: allow(hot-alloc) -- first-call lazy growth, amortized across the run
    stage(out);
}

fn stage(out: &mut Acc) {
    out.data = Vec::new();
}

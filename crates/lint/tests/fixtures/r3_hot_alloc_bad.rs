// Fixture: R3 must flag heap allocation inside *_into fns, *Scratch
// impls, and the batched trace transport (process_batch / flush fns),
// but not in cold code.
fn cold_setup() -> Vec<f64> {
    let v = vec![0.0; 128]; // fine: not a hot span
    v.to_vec() // fine: not a hot span
}

fn mul_into(out: &mut [f64], a: &[f64]) {
    let tmp = Vec::new(); // flagged
    let copy = a.to_vec(); // flagged
    let boxed = Box::new(copy); // flagged
    let gathered: Vec<f64> = a.iter().copied().collect(); // flagged (.collect::)
    out[0] = boxed[0] + gathered[0] + tmp.len() as f64;
}

struct IcpScratch {
    buf: Vec<f64>,
}

impl IcpScratch {
    fn new(n: usize) -> Self {
        // Constructors are exempt: warmup may allocate.
        Self { buf: vec![0.0; n] }
    }

    fn step(&mut self, pts: &[f64]) {
        self.buf = pts.to_vec(); // flagged: steady state must reuse buf
    }
}

struct LeakyTransport {
    ops: Vec<u64>,
}

impl LeakyTransport {
    fn process_batch(&mut self, ops: &[u64]) {
        let staged = ops.to_vec(); // flagged: batch consumption is hot
        self.ops = staged;
    }

    fn flush(&mut self) {
        let drained: Vec<u64> = self.ops.iter().copied().collect(); // flagged (.collect::)
        self.ops.clear();
        let _ = drained;
    }

    fn describe(&self) -> Vec<u64> {
        self.ops.to_vec() // fine: not a hot span
    }
}

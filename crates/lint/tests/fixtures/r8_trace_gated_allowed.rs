//! Every gating idiom the rule must accept — positive block, negated
//! early return, bound guard variable, fully-guarded helper — plus one
//! justified allow for a genuinely cold path.

impl Grid {
    pub fn step(&mut self, trace: &mut T) {
        if !trace.enabled() {
            return;
        }
        trace.read(self.addr);
        trace.write(self.addr);
    }

    pub fn probe(&mut self, t: &mut T) {
        let traced = self.tracer.enabled();
        if traced {
            t.read(self.addr);
        }
    }

    pub fn scan(&mut self, trace: &mut T) {
        if trace.enabled() {
            self.emit(trace);
        }
    }

    fn emit(&mut self, trace: &mut T) {
        trace.write(self.addr);
    }

    pub fn finale(&mut self, trace: &mut T) {
        // rtr-lint: allow(trace-gated) -- cold: runs once per episode at shutdown
        trace.write(self.addr);
    }
}

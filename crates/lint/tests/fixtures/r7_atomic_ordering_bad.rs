//! Ordering tokens in the audited concurrency files must sit in a fn
//! that carries a `// ORDERING:` rationale — and `SeqCst` is denied
//! even when one is present.

impl Ring {
    fn load_tail(&self) -> u64 {
        self.tail.load(Ordering::Acquire)
    }

    fn bump_dropped(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    fn shutdown(&self) {
        // ORDERING: full barrier keeps the shutdown proof trivial.
        self.stop.store(true, Ordering::SeqCst);
    }
}

//! A justified escape hatch: the annotation must carry a written reason,
//! and prose references to the simulator (comments, strings are scrubbed
//! before matching) are always fine — e.g. "miss ratios measured with
//! rtr_archsim live in crates/bench".

// rtr-lint: allow(layering) -- doc example compiled against the simulator API
use rtr_archsim::MemorySim;

pub fn sink<T: rtr_trace::MemTrace + ?Sized>(trace: &mut T) {
    if trace.enabled() {
        trace.read(0);
    }
}

//! Rationale-carrying orderings are clean; the one `SeqCst` needs an
//! explicit, reasoned allow on top of its rationale.

impl Ring {
    fn load_tail(&self) -> u64 {
        // ORDERING: Acquire pairs with the producer's Release store of tail.
        self.tail.load(Ordering::Acquire)
    }

    fn bump_dropped(&self) {
        // ORDERING: Relaxed — a monotonic statistic, never synchronizes.
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    fn shutdown(&self) {
        // ORDERING: cold shutdown path; the full barrier keeps the pairing proof trivial.
        // rtr-lint: allow(atomic-ordering) -- shutdown runs once, clarity over cycles
        self.stop.store(true, Ordering::SeqCst);
    }
}

//! R3 ring-producer fixture: in the trace crate, the SPSC ring's
//! producer-side entry points (`push`, `push_batch`, `try_push_batch`,
//! `publish`) are hot spans — any heap allocation inside them is a
//! violation. The same function names outside `crates/trace` stay cold.

pub struct Producer {
    staged: Vec<u64>,
}

impl Producer {
    pub fn push(&mut self, item: u64) -> bool {
        let boxed = Box::new(item);
        self.staged.push(*boxed);
        true
    }

    pub fn push_batch(&mut self, items: &[u64]) -> usize {
        let staged = items.to_vec();
        staged.len()
    }

    pub fn try_push_batch(&mut self, items: &[u64]) -> usize {
        let copies: Vec<u64> = items.iter().copied().collect();
        copies.len()
    }

    pub fn publish(&mut self, id: u32, value: u64) -> bool {
        let label = vec![id as u64, value];
        !label.is_empty()
    }

    /// Cold helper: allocation here is fine even in the trace crate.
    pub fn drain_names(&self) -> Vec<u64> {
        self.staged.to_vec()
    }
}

// Fixture: R2 must flag wall-clock reads in a kernel crate.
use std::time::Instant;

fn solve_iteration() -> f64 {
    let t0 = Instant::now();
    let _wall = std::time::SystemTime::now();
    t0.elapsed().as_secs_f64()
}

// Fixture: R4 flags unsafe blocks without SAFETY comments. As a crate
// root (lint_source is handed a lib.rs path), the missing
// #![forbid(unsafe_code)] is flagged too.
fn raw_read(p: *const f64) -> f64 {
    unsafe { *p }
}

fn documented_read(p: *const f64) -> f64 {
    // SAFETY: caller guarantees p points to a live, aligned f64.
    unsafe { *p }
}

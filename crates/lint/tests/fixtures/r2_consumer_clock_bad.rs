//! R2 consumer-callback fixture: the measurement crates (harness,
//! bench) may read wall clocks freely — except inside a ring consumer's
//! `consume_batch` callback, where a clock read would time the racy
//! drain schedule instead of the producer's work.

use std::time::Instant;

pub struct TimedConsumer {
    pub batches: u64,
    pub last_nanos: u64,
}

impl TimedConsumer {
    fn consume_batch(&mut self, batch: &[u64]) {
        let start = Instant::now();
        self.batches += batch.len() as u64;
        self.last_nanos = start.elapsed().as_nanos() as u64;
    }

    /// Clock reads outside the callback stay legal in these crates.
    pub fn wall_deadline(&self) -> Instant {
        Instant::now()
    }
}

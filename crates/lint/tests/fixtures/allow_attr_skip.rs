//! An allow comment must reach past attribute lines to the item they
//! decorate: the annotation sits above `#[inline]`, the violation two
//! lines further down.

// rtr-lint: allow(nondet-iter) -- keys are sorted into a Vec before any iteration
#[inline]
#[allow(clippy::implicit_hasher)]
pub fn lookup(m: &std::collections::HashMap<u32, u32>, k: u32) -> Option<u32> {
    m.get(&k).copied()
}

// Seeded violations for the stepped-lifecycle hot-alloc extension:
// `step` fns on `*Instance`/`*State` impls are per-tick hot spans; the
// lifecycle ends (`instantiate`, `finish`) stay cold.

pub struct PflInstance {
    buf: Vec<f64>,
}

impl PflInstance {
    pub fn instantiate() -> Self {
        Self { buf: Vec::new() }
    }

    pub fn step(&mut self) {
        let staged = self.buf.to_vec();
        self.buf.copy_from_slice(&staged);
    }

    pub fn finish(self) -> Vec<f64> {
        self.buf.clone()
    }
}

impl TrackerState {
    pub fn step(&mut self) {
        refill(self);
    }

    pub fn describe(&self) -> String {
        self.name.clone()
    }
}

fn refill(s: &mut TrackerState) {
    s.scratch = Vec::new();
}

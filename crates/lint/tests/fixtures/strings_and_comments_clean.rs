// Fixture: rule-triggering tokens inside comments and literals must NOT
// be flagged. Mentioning HashMap, Instant::now, or SystemTime here is
// harmless, as is /* vec![ inside a block comment */.
fn describe() -> &'static str {
    let a = "HashMap and HashSet live in std::collections";
    let b = "Instant::now() reads the monotonic clock";
    let c = r#"raw: SystemTime::now and Box::new and .collect()"#;
    let d = 'H'; // a char, not a HashMap
    let _ = (a, b, c, d);
    "clean"
}

fn mul_into(out: &mut [f64]) {
    // Even inside a hot span: ".to_vec()" in a string is not an allocation.
    let label = ".to_vec() would be flagged outside this literal";
    out[0] = label.len() as f64;
}

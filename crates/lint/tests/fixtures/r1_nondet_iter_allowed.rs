// Fixture: R1 findings covered by allow annotations must pass --deny.
// rtr-lint: allow(nondet-iter) -- keyed lookups only, never iterated
use std::collections::HashMap;

fn build() {
    // rtr-lint: allow(nondet-iter) -- membership queries only, order never observed
    let mut open: HashMap<u32, f64> = HashMap::new();
    open.insert(1, 0.5);
}

// Fixture: R1 must flag HashMap/HashSet in a kernel crate.
use std::collections::HashMap;
use std::collections::HashSet;

fn build() {
    let mut open: HashMap<u32, f64> = HashMap::new();
    let mut seen: HashSet<u32> = HashSet::new();
    open.insert(1, 0.5);
    seen.insert(1);
}

//! Seeded `layering` violations: kernel-layer code naming the cache
//! simulator instead of staying generic over the `MemTrace` sink.

use rtr_archsim::MemorySim;

pub fn traced_run() -> u64 {
    let mut sim = rtr_archsim::MemorySim::i3_8109u();
    sim.read(0);
    sim.report().accesses
}

pub fn typed(sim: &mut MemorySim) -> rtr_archsim::HierarchyReport {
    sim.write(64);
    sim.report()
}

//! Ungated trace emission in kernel code: a direct ungated call, and a
//! helper reachable from one unguarded caller (one guarded caller is
//! not enough — every path in must be gated).

impl Grid {
    pub fn step(&mut self, trace: &mut T) {
        trace.read(self.addr);
    }

    pub fn scan(&mut self, trace: &mut T) {
        if trace.enabled() {
            self.emit(trace);
        }
    }

    pub fn sloppy(&mut self, trace: &mut T) {
        self.emit(trace);
    }

    fn emit(&mut self, trace: &mut T) {
        trace.write(self.addr);
    }
}

// Fixture: an annotated wall-clock read passes --deny.
fn solve_iteration() -> u64 {
    // rtr-lint: allow(wall-clock) -- one-shot startup stamp, outside the measured loop
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos() as u64
}

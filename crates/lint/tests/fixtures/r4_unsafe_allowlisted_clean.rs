// Fixture: the one legal shape for unsafe code in the workspace — the
// SIMD crate's feature-gated intrinsics backend. The crate root trades
// the unconditional forbid for the cfg_attr form, and every unsafe block
// carries a SAFETY line. Clean when linted as crates/simd/src/lib.rs;
// flagged (allowlist + gated forbid) anywhere else.
#![cfg_attr(not(feature = "intrinsics"), forbid(unsafe_code))]

fn lane_load(p: *const f64) -> f64 {
    // SAFETY: caller guarantees p points to a live, aligned f64.
    unsafe { *p }
}

fn lane_load_inline(p: *const f64) -> f64 {
    unsafe { *p } // SAFETY: same-line form is accepted too.
}

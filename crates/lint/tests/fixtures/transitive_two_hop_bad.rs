//! Two-hop transitive violations: every hot entry point below is
//! lexically clean — the allocation / clock read hides two calls away,
//! so only the interprocedural pass can see it.

pub fn mul_into(out: &mut Acc) {
    stage(out);
}

fn stage(out: &mut Acc) {
    grow(out);
}

fn grow(out: &mut Acc) {
    out.data = Vec::new();
}

pub fn step_into(state: &mut Acc) {
    refresh(state);
}

fn refresh(state: &mut Acc) {
    state.t = stamp();
}

fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

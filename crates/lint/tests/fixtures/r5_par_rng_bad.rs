// Fixture: R5 flags RNG construction inside parallel closures unless the
// seed is derived via chunk_seed.
fn scatter(pool: &Pool, xs: &[f64], seed: u64) {
    let bad: Vec<f64> = pool.par_map(xs, |i, x| {
        let mut rng = SimRng::seed_from(42); // flagged: fixed seed per chunk
        x + rng.next_f64()
    });
    let good: Vec<f64> = pool.par_map(xs, |i, x| {
        let mut rng = SimRng::seed_from(chunk_seed(seed, i as u64)); // fine
        x + rng.next_f64()
    });
}

//! Property tests for the lint lexer's `scrub` pass.
//!
//! The scrubber underpins every rule: it blanks comments, string
//! literals, and char literals so token scans never match prose, while
//! preserving byte offsets so findings map back to real source lines.
//! These tests assemble adversarial sources from fragments that mix the
//! lexer's hard cases — raw strings containing `//`, nested block
//! comments containing `"`, char-literal-vs-lifetime ambiguity inside
//! macro bodies — and assert the two invariants everything downstream
//! relies on:
//!
//! 1. blanked output has exactly the source's byte length, and
//! 2. every newline survives at its original offset (line structure).
//!
//! A third check pins the scrub direction: identifiers in code position
//! survive, while quoted/commented decoys never leak into the output.

use proptest::prelude::*;
use rtr_lint::lexer::{line_of, scrub};

/// Adversarial source fragments. Each is valid-enough Rust for the
/// lexer's purposes and contains the decoy `ZDECOYZ` only inside
/// comment/string/char territory, never in code position.
const FRAGMENTS: &[&str] = &[
    // Raw strings containing line-comment and block-comment markers.
    "let a = r\"ZDECOYZ // not a comment\";\n",
    "let b = r#\"ZDECOYZ /* still a string */ \"quoted\" \"#;\n",
    "let c = r##\"nested \"# hash \"## ; // trailing ZDECOYZ\n",
    // Nested block comments containing quotes and comment openers.
    "/* ZDECOYZ \" /* inner \" */ still out */ fn live() {}\n",
    "/* level1 /* level2 // ZDECOYZ */ \"deep\" */ let d = 1;\n",
    // Line comments swallowing string openers.
    "// \" ZDECOYZ r\" r#\" unterminated-looking\n",
    // Char literal vs lifetime inside macro bodies.
    "vec!['a', 'b', '\\'', 'Z'];\n",
    "fn lt<'a>(x: &'a str) -> &'a str { x }\n",
    "matches!(tok, 'x' | 'y');\n",
    "let e: &'static str = \"ZDECOYZ\"; let f = '\\n';\n",
    // Strings containing escapes and comment markers.
    "let g = \"esc \\\" ZDECOYZ // /* */ \";\n",
    "let h = \"multi\\nline-escape\"; // ZDECOYZ\n",
    // Plain code (control group — must survive scrubbing verbatim).
    "pub fn survivor(n: usize) -> usize { n + 1 }\n",
    "struct Keeper { field: u64 }\n",
];

/// Byte offsets of every `\n` in `s`.
fn newline_offsets(s: &str) -> Vec<usize> {
    s.bytes()
        .enumerate()
        .filter_map(|(i, b)| (b == b'\n').then_some(i))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scrub_preserves_byte_length_and_line_structure(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 1..24),
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let scrubbed = scrub(&src);

        prop_assert_eq!(
            scrubbed.text.len(),
            src.len(),
            "blanked output must be byte-for-byte the same length"
        );
        prop_assert_eq!(&scrubbed.original, &src, "original must be kept verbatim");
        prop_assert_eq!(
            newline_offsets(&scrubbed.text),
            newline_offsets(&src),
            "every newline must survive at its original offset"
        );
        // Line numbering built on the blanked text must agree with the
        // source for every byte, not just newline positions.
        prop_assert_eq!(line_of(&scrubbed.text, src.len()), line_of(&src, src.len()));

        // Decoys live only inside comments/strings/chars and must be gone.
        prop_assert!(
            !scrubbed.text.contains("ZDECOYZ"),
            "quoted/commented text leaked into the blanked output:\n{}",
            scrubbed.text
        );
        // Code-position identifiers must survive wherever they occur.
        for name in ["survivor", "Keeper", "live"] {
            if picks.iter().any(|&p| FRAGMENTS[p].contains(name)) {
                prop_assert!(
                    scrubbed.text.contains(name),
                    "code identifier `{}` was wrongly blanked",
                    name
                );
            }
        }
    }

    #[test]
    fn scrub_is_idempotent_on_blanked_output(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 1..12),
    ) {
        // Scrubbing already-blanked text must be a no-op: blanks contain
        // no comment/string openers, so a second pass changes nothing.
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let once = scrub(&src);
        let twice = scrub(&once.text);
        prop_assert_eq!(&twice.text, &once.text);
    }
}

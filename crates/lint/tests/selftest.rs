//! Self-tests: every seeded fixture violation must be flagged, every
//! annotated fixture must pass, and the JSON report must round-trip.
//!
//! Fixtures live under `tests/fixtures/` and are linted as text with a
//! virtual workspace path (which selects the rule set), so they never
//! need to compile.

use rtr_lint::{lint_source, Finding, Report};

/// Lints a fixture as if it lived in the planning (kernel) crate.
fn kernel(source: &str) -> Vec<Finding> {
    lint_source("crates/planning/src/fixture.rs", source)
}

fn violations(findings: &[Finding]) -> Vec<&Finding> {
    findings.iter().filter(|f| f.allowed.is_none()).collect()
}

#[test]
fn r1_bad_fixture_is_flagged() {
    let f = kernel(include_str!("fixtures/r1_nondet_iter_bad.rs"));
    let v = violations(&f);
    assert!(v.len() >= 4, "expected HashMap+HashSet uses flagged: {f:?}");
    assert!(v.iter().all(|x| x.rule == "nondet-iter"));
    assert!(v.iter().any(|x| x.message.contains("HashMap")));
    assert!(v.iter().any(|x| x.message.contains("HashSet")));
}

#[test]
fn r1_allowed_fixture_passes_deny() {
    let f = kernel(include_str!("fixtures/r1_nondet_iter_allowed.rs"));
    assert!(!f.is_empty(), "findings should still be reported");
    assert!(
        violations(&f).is_empty(),
        "all findings must be allowed: {f:?}"
    );
    assert!(f
        .iter()
        .all(|x| x.allowed.as_deref().is_some_and(|r| !r.is_empty())));
}

#[test]
fn r2_bad_fixture_is_flagged() {
    let f = kernel(include_str!("fixtures/r2_wall_clock_bad.rs"));
    let v = violations(&f);
    assert_eq!(v.len(), 2, "Instant::now and SystemTime: {f:?}");
    assert!(v.iter().all(|x| x.rule == "wall-clock"));
}

#[test]
fn r2_fixtures_are_clean_in_measurement_crates() {
    let src = include_str!("fixtures/r2_wall_clock_bad.rs");
    assert!(lint_source("crates/harness/src/fixture.rs", src).is_empty());
    assert!(lint_source("crates/bench/src/fixture.rs", src).is_empty());
}

#[test]
fn r2_consumer_clock_fixture_is_flagged_in_measurement_crates() {
    let src = include_str!("fixtures/r2_consumer_clock_bad.rs");
    for path in [
        "crates/harness/src/fixture.rs",
        "crates/bench/src/fixture.rs",
    ] {
        let f = lint_source(path, src);
        let v = violations(&f);
        assert_eq!(v.len(), 1, "{path}: {f:?}");
        assert_eq!(v[0].rule, "wall-clock");
        assert_eq!(v[0].line, 15, "only the consume_batch body: {v:?}");
        assert!(v[0].message.contains("consume_batch"));
        // wall_deadline's Instant::now (line 22) stays legal here.
        assert!(!v.iter().any(|x| x.line == 22), "{v:?}");
    }
    // In a kernel crate the blanket rule owns the file: both clock
    // reads are findings, with no double count on the callback line.
    let f = kernel(src);
    let v = violations(&f);
    assert_eq!(v.len(), 2, "{f:?}");
    assert!(v.iter().all(|x| x.rule == "wall-clock"));
}

#[test]
fn r2_allowed_fixture_passes_deny() {
    let f = kernel(include_str!("fixtures/r2_wall_clock_allowed.rs"));
    assert_eq!(f.len(), 1);
    assert!(f[0].allowed.is_some());
}

#[test]
fn r3_bad_fixture_flags_hot_spans_only() {
    let f = kernel(include_str!("fixtures/r3_hot_alloc_bad.rs"));
    let v = violations(&f);
    assert!(v.iter().all(|x| x.rule == "hot-alloc"), "{f:?}");
    // mul_into: Vec::new, .to_vec(), Box::new, .collect(); Scratch::step:
    // .to_vec(); transport: process_batch .to_vec(), flush .collect().
    assert_eq!(v.len(), 7, "{v:?}");
    // Nothing from cold_setup (lines 4-7) or the exempt constructor.
    assert!(v.iter().all(|x| x.line >= 10), "{v:?}");
    assert!(
        !v.iter().any(|x| (22..=25).contains(&x.line)),
        "Scratch constructor must be exempt: {v:?}"
    );
    // The batched-transport spans are covered...
    assert!(v.iter().any(|x| x.line == 38), "process_batch: {v:?}");
    assert!(v.iter().any(|x| x.line == 43), "flush: {v:?}");
    // ...but ordinary methods on the same type stay cold.
    assert!(!v.iter().any(|x| x.line == 49), "describe is cold: {v:?}");
}

#[test]
fn r3_instance_step_fixture_flags_step_bodies_only() {
    let f = kernel(include_str!("fixtures/r3_instance_step_bad.rs"));
    let v = violations(&f);
    assert!(v.iter().all(|x| x.rule == "hot-alloc"), "{f:?}");
    assert_eq!(v.len(), 2, "{v:?}");
    // PflInstance::step's direct .to_vec()...
    assert!(v.iter().any(|x| x.line == 15), "{v:?}");
    // ...and TrackerState::step's transitive reach into refill.
    let trans = v.iter().find(|x| x.line == 26).expect("transitive");
    assert_eq!(trans.chain, ["TrackerState::step", "refill", "Vec::new"]);
    // The lifecycle ends and ordinary methods stay cold: instantiate's
    // Vec::new (line 11), finish's .clone() (line 20), describe (30).
    for cold in [11, 20, 30] {
        assert!(!v.iter().any(|x| x.line == cold), "line {cold}: {v:?}");
    }
}

#[test]
fn r3_ring_producer_fixture_is_flagged_only_in_the_trace_crate() {
    let src = include_str!("fixtures/r3_ring_producer_bad.rs");
    let f = lint_source("crates/trace/src/fixture.rs", src);
    let v = violations(&f);
    assert!(v.iter().all(|x| x.rule == "hot-alloc"), "{f:?}");
    // push: Box::new; push_batch: .to_vec(); try_push_batch: .collect();
    // publish: vec![...].
    assert_eq!(v.len(), 4, "{v:?}");
    for line in [12, 18, 23, 28] {
        assert!(v.iter().any(|x| x.line == line), "line {line}: {v:?}");
    }
    // The cold helper's .to_vec() (line 34) is legal.
    assert!(!v.iter().any(|x| x.line == 34), "{v:?}");
    // Outside the trace crate these fn names are not ring producers.
    assert!(kernel(src).is_empty(), "only hot in crates/trace");
}

#[test]
fn r4_bad_fixture_flags_missing_forbid_and_undocumented_unsafe() {
    let src = include_str!("fixtures/r4_unsafe_bad.rs");
    // Linted as the allowlisted crate's root: SAFETY comments decide.
    let f = lint_source("crates/simd/src/lib.rs", src);
    let v = violations(&f);
    assert!(v
        .iter()
        .any(|x| x.message.contains("forbid(unsafe_code)") && x.line == 1));
    assert!(v
        .iter()
        .any(|x| x.message.contains("SAFETY") && x.line == 5));
    // The documented unsafe block must not be flagged.
    assert!(!v.iter().any(|x| x.line == 10), "{v:?}");
    assert_eq!(v.len(), 2, "{v:?}");
}

#[test]
fn r4_unsafe_outside_the_allowlist_is_flagged_outright() {
    let src = include_str!("fixtures/r4_unsafe_bad.rs");
    // In a non-allowlisted crate even the SAFETY-documented block (line
    // 10) is a finding: only rtr-simd may carry unsafe code.
    let f = lint_source("crates/planning/src/lib.rs", src);
    let v = violations(&f);
    assert!(v
        .iter()
        .any(|x| x.message.contains("forbid(unsafe_code)") && x.line == 1));
    assert!(v
        .iter()
        .any(|x| x.message.contains("allowlist") && x.line == 5));
    assert!(v
        .iter()
        .any(|x| x.message.contains("allowlist") && x.line == 10));
    assert_eq!(v.len(), 3, "{v:?}");
}

#[test]
fn r4_allowlisted_fixture_is_clean_only_in_the_simd_crate() {
    let src = include_str!("fixtures/r4_unsafe_allowlisted_clean.rs");
    assert!(
        lint_source("crates/simd/src/lib.rs", src).is_empty(),
        "gated forbid + SAFETY lines must pass in the allowlisted crate"
    );
    let f = lint_source("crates/geom/src/lib.rs", src);
    let v = violations(&f);
    // Missing unconditional forbid + two allowlist findings.
    assert!(v.iter().any(|x| x.message.contains("forbid(unsafe_code)")));
    assert_eq!(
        v.iter().filter(|x| x.message.contains("allowlist")).count(),
        2,
        "{v:?}"
    );
}

#[test]
fn r5_bad_fixture_flags_non_chunk_seeded_rng() {
    let f = kernel(include_str!("fixtures/r5_par_rng_bad.rs"));
    let v = violations(&f);
    assert_eq!(v.len(), 1, "{f:?}");
    assert_eq!(v[0].rule, "par-rng");
    assert_eq!(v[0].line, 5);
}

#[test]
fn r6_bad_fixture_flags_simulator_naming() {
    let f = kernel(include_str!("fixtures/r6_layering_bad.rs"));
    let v = violations(&f);
    assert_eq!(v.len(), 3, "use + ctor + type position: {f:?}");
    assert!(v.iter().all(|x| x.rule == "layering"));
    // The same file is legal one layer up.
    assert!(lint_source(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/r6_layering_bad.rs")
    )
    .is_empty());
}

#[test]
fn r6_allowed_fixture_passes_deny() {
    let f = kernel(include_str!("fixtures/r6_layering_allowed.rs"));
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "layering");
    assert!(f[0].allowed.is_some());
    assert!(violations(&f).is_empty());
}

#[test]
fn r6_flags_manifests_of_layered_crates() {
    let toml = "[dependencies]\nrtr-archsim = { path = \"../archsim\" }\n";
    let f = lint_source("crates/sim/Cargo.toml", toml);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "layering");
    assert!(lint_source("crates/archsim/Cargo.toml", toml).is_empty());
    assert!(lint_source("crates/core/Cargo.toml", toml).is_empty());
}

#[test]
fn tokens_in_strings_and_comments_are_ignored() {
    let f = kernel(include_str!("fixtures/strings_and_comments_clean.rs"));
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn fixture_findings_round_trip_through_the_report() {
    let mut findings = Vec::new();
    findings.extend(kernel(include_str!("fixtures/r1_nondet_iter_bad.rs")));
    findings.extend(kernel(include_str!("fixtures/r1_nondet_iter_allowed.rs")));
    findings.extend(kernel(include_str!("fixtures/r2_wall_clock_bad.rs")));
    findings.extend(kernel(include_str!("fixtures/r6_layering_bad.rs")));
    findings.extend(kernel(include_str!("fixtures/r6_layering_allowed.rs")));
    let report = Report {
        version: 2,
        files_scanned: 5,
        elapsed_ms: 3,
        findings,
    };
    assert!(report.findings.iter().any(|f| f.rule == "layering"));
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "layering" && f.allowed.is_some()));
    let parsed = Report::from_json(&report.to_json()).unwrap();
    assert_eq!(parsed, report);
    assert!(parsed.violations().count() > 0);
    assert!(parsed.allowed().count() > 0);
}

#[test]
fn transitive_two_hop_fixture_is_flagged_with_full_chains() {
    let f = kernel(include_str!("fixtures/transitive_two_hop_bad.rs"));
    let v = violations(&f);
    // Transitive hot-alloc + transitive wall-clock at the hot entries,
    // plus the leaf's own direct clock read.
    assert_eq!(v.len(), 3, "{f:?}");
    let alloc = v.iter().find(|x| x.rule == "hot-alloc").unwrap();
    assert_eq!(alloc.line, 6, "finding sits on the entry's call site");
    assert_eq!(alloc.chain, ["mul_into", "stage", "grow", "Vec::new"]);
    assert!(alloc
        .message
        .contains("mul_into -> stage -> grow -> Vec::new"));
    let clock = v
        .iter()
        .find(|x| x.rule == "wall-clock" && !x.chain.is_empty())
        .unwrap();
    assert_eq!(clock.line, 18);
    assert_eq!(
        clock.chain,
        ["step_into", "refresh", "stamp", "Instant::now"]
    );
}

#[test]
fn transitive_two_hop_allowed_fixture_passes_deny() {
    let f = kernel(include_str!("fixtures/transitive_two_hop_allowed.rs"));
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "hot-alloc");
    assert!(!f[0].chain.is_empty(), "still carries the chain evidence");
    assert!(violations(&f).is_empty(), "{f:?}");
}

#[test]
fn r7_bad_fixture_flags_missing_rationale_and_seqcst() {
    let src = include_str!("fixtures/r7_atomic_ordering_bad.rs");
    let f = lint_source("crates/trace/src/ring.rs", src);
    let v = violations(&f);
    assert_eq!(v.len(), 3, "{f:?}");
    assert!(v.iter().all(|x| x.rule == "atomic-ordering"));
    assert!(v
        .iter()
        .any(|x| x.line == 7 && x.message.contains("ORDERING:")));
    assert!(v.iter().any(|x| x.line == 11));
    // SeqCst is flagged despite the fn's rationale comment.
    assert!(v
        .iter()
        .any(|x| x.line == 16 && x.message.contains("SeqCst")));
    // Outside the audited files the same code is not this rule's business.
    assert!(lint_source("crates/harness/src/roi.rs", src)
        .iter()
        .all(|x| x.rule != "atomic-ordering"));
}

#[test]
fn r7_allowed_fixture_passes_deny_in_every_audited_file() {
    let src = include_str!("fixtures/r7_atomic_ordering_allowed.rs");
    for path in [
        "crates/trace/src/ring.rs",
        "crates/trace/src/sync.rs",
        "crates/harness/src/collector.rs",
    ] {
        let f = lint_source(path, src);
        assert_eq!(f.len(), 1, "{path}: {f:?}");
        assert!(f[0].message.contains("SeqCst"));
        assert!(f[0].allowed.is_some(), "{path}: {f:?}");
    }
}

#[test]
fn r8_bad_fixture_flags_ungated_and_partially_guarded_emission() {
    let f = kernel(include_str!("fixtures/r8_trace_gated_bad.rs"));
    let v = violations(&f);
    assert_eq!(v.len(), 2, "{f:?}");
    assert!(v.iter().all(|x| x.rule == "trace-gated"));
    // step's direct ungated read...
    assert!(v.iter().any(|x| x.line == 7), "{v:?}");
    // ...and emit's write: one guarded caller (scan) does not excuse the
    // unguarded one (sloppy).
    assert!(v.iter().any(|x| x.line == 21), "{v:?}");
}

#[test]
fn r8_allowed_fixture_passes_deny() {
    let f = kernel(include_str!("fixtures/r8_trace_gated_allowed.rs"));
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "trace-gated");
    assert!(f[0].allowed.is_some());
    assert!(violations(&f).is_empty(), "{f:?}");
}

#[test]
fn allow_comment_reaches_past_attribute_lines() {
    let f = kernel(include_str!("fixtures/allow_attr_skip.rs"));
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "nondet-iter");
    assert_eq!(f[0].line, 8, "the HashMap token two attributes below");
    assert!(f[0].allowed.is_some(), "{f:?}");
}

/// Satellite guard: one full workspace pass (lex + index + call graph +
/// fixpoint + every rule) must stay interactive. The 5 s budget is far
/// above the observed ~0.6 s debug-build time but low enough to catch
/// an accidental quadratic blowup in the resolver or fixpoint.
#[test]
fn full_workspace_pass_stays_under_the_latency_guard() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &root, &mut files);
    assert!(files.len() > 50, "workspace walk broke: {}", files.len());
    // Instant::now is legal here: crates/lint is a measurement crate.
    let start = std::time::Instant::now();
    let findings = rtr_lint::lint_workspace(&files);
    let elapsed = start.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "full pass took {elapsed:?} over {} files",
        files.len()
    );
    // The committed workspace is clean under --deny.
    assert!(
        findings.iter().all(|f| f.allowed.is_some()),
        "workspace has unallowed violations: {:?}",
        findings
            .iter()
            .filter(|f| f.allowed.is_none())
            .collect::<Vec<_>>()
    );
}

fn collect_rs(dir: &std::path::Path, root: &std::path::Path, out: &mut Vec<(String, String)>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            // Match the CLI walk: crate `src/` trees only — never
            // tests/, benches/, or fixture corpora.
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            let under_crates = dir.file_name().is_some_and(|n| n == "crates");
            if under_crates || name == "src" || dir.to_str().is_some_and(|s| s.contains("/src")) {
                collect_rs(&path, root, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs")
            && path.to_str().is_some_and(|s| s.contains("/src/"))
        {
            let rel = path
                .strip_prefix(root)
                .unwrap()
                .to_string_lossy()
                .into_owned();
            if let Ok(text) = std::fs::read_to_string(&path) {
                out.push((rel, text));
            }
        }
    }
}

//! Plain-text report tables for the experiment binaries.

use std::fmt;

/// A simple left-aligned text table.
///
/// # Example
///
/// ```
/// use rtr_harness::Table;
///
/// let mut t = Table::new(&["kernel", "stage", "bottleneck"]);
/// t.row(&["01.pfl", "Perception", "Ray-casting"]);
/// let text = t.to_string();
/// assert!(text.contains("01.pfl"));
/// assert!(text.contains("bottleneck"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept and
    /// widen the table.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|s| (*s).to_owned()).collect());
        self
    }

    /// Appends a row of owned strings (convenient with `format!`).
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn column_count(&self) -> usize {
        self.rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.column_count();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                write!(f, " {cell:<width$} |")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["wide-cell-content", "x"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // All lines have identical width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    fn short_rows_pad_missing_cells() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["only-one"]);
        let text = t.to_string();
        assert!(text.contains("only-one"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn row_owned_accepts_formatted() {
        let mut t = Table::new(&["n", "value"]);
        t.row_owned(vec!["1".into(), format!("{:.2}", 12.3456)]);
        assert!(t.to_string().contains("12.35"));
    }

    #[test]
    fn empty_table_renders_headers() {
        let t = Table::new(&["x"]);
        assert!(t.is_empty());
        assert!(t.to_string().contains('x'));
    }
}

//! Named-region wall-clock profiling.
//!
//! Every per-kernel bottleneck number in the paper ("67 % to 78 % of the
//! entire execution time is spent in ray-casting", "more than 65 % ... in
//! collision detection") is a *region time fraction*. The kernels in this
//! suite wrap their candidate-bottleneck code in profiler regions and the
//! experiment binaries print the fractions.

use std::cell::Cell;
use std::collections::HashMap;
use std::time::{Duration, Instant};

use rtr_trace::MetricPublisher;

/// Accumulated timing for one named region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionReport {
    /// Region name.
    pub name: String,
    /// Total time spent inside the region.
    pub total: Duration,
    /// Number of times the region was entered.
    pub calls: u64,
    /// Share of the profiler's reference total, in `[0, 1]`.
    pub fraction: f64,
}

#[derive(Debug, Default, Clone)]
struct RegionAcc {
    total: Duration,
    calls: u64,
}

/// A flat named-region profiler.
///
/// Regions are identified by `&'static str` names. Time spent in a region
/// is attributed exclusively to that region (kernels keep their regions
/// non-overlapping, matching how the paper attributes execution time).
/// Fractions are computed against a *reference total*: the profiler's own
/// observed span from construction (or [`Profiler::reset`]) to the moment
/// of the query, so un-instrumented code shows up as a smaller fraction
/// for every region rather than being silently ignored.
///
/// # Example
///
/// ```
/// use rtr_harness::Profiler;
///
/// let mut p = Profiler::new();
/// p.time("hot", || std::thread::sleep(std::time::Duration::from_millis(5)));
/// p.time("cold", || ());
/// assert!(p.fraction("hot") > p.fraction("cold"));
/// ```
/// # Hot-loop timing
///
/// Per-iteration clock reads inside kernel hot loops are themselves a
/// perturbation (a syscall or vDSO read per iteration). They are
/// therefore **off by default**: [`Profiler::new`] builds a profiler
/// whose [`Profiler::hot_start`]/[`Profiler::hot_add`] hooks are no-ops,
/// and kernels route every in-loop measurement through those hooks.
/// Experiment binaries that want the per-region breakdown construct the
/// profiler with [`Profiler::timed`] instead. Coarse once-per-solve
/// measurements ([`Profiler::time`], [`Profiler::span`]) always measure.
///
/// # Ring publishing
///
/// [`Profiler::publish_to`] attaches a [`MetricPublisher`]: every
/// region measurement is then *also* streamed as an individual
/// nanosecond record through the SPSC ring to an off-thread
/// [`MetricMap`](rtr_trace::MetricMap), which is what serve-mode style
/// per-invocation latency histograms (p50/p99/p99.9) are built from.
/// The inline aggregate stays authoritative for region totals and
/// fractions; publishing runs under the ring's count-and-drop contract
/// and never blocks the measured code.
#[derive(Debug)]
pub struct Profiler {
    regions: HashMap<&'static str, RegionAcc>,
    origin: Instant,
    /// When set, used instead of `origin.elapsed()` as the denominator —
    /// lets experiment code freeze the total at kernel completion.
    frozen_total: Option<Duration>,
    /// Whether per-iteration hot-loop hooks read the clock.
    hot: bool,
    /// Optional ring publisher for per-measurement records.
    publisher: Option<MetricPublisher>,
}

impl Clone for Profiler {
    /// Clones the aggregates and knobs. The ring publisher is **not**
    /// cloned — the ring is single-producer, so the attached publisher
    /// stays with the original and the clone starts unattached.
    fn clone(&self) -> Self {
        Profiler {
            regions: self.regions.clone(),
            origin: self.origin,
            frozen_total: self.frozen_total,
            hot: self.hot,
            publisher: None,
        }
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

impl Profiler {
    /// Creates a profiler with hot-loop timing **off** (the default for
    /// kernel runs: no per-iteration clock reads perturb the loop).
    pub fn new() -> Self {
        Profiler {
            regions: HashMap::new(),
            origin: Instant::now(),
            frozen_total: None,
            hot: false,
            publisher: None,
        }
    }

    /// Creates a profiler with hot-loop timing **on** — used by the
    /// experiment binaries and bottleneck tests that report per-region
    /// fractions.
    pub fn timed() -> Self {
        Profiler {
            hot: true,
            ..Profiler::new()
        }
    }

    /// Whether per-iteration hot-loop hooks are live.
    pub fn hot_timing(&self) -> bool {
        self.hot
    }

    /// Starts a hot-loop measurement: `Some(start)` when hot timing is
    /// on, `None` (no clock read) otherwise. Pair with
    /// [`Profiler::hot_add`].
    pub fn hot_start(&self) -> Option<Instant> {
        if self.hot {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Completes a hot-loop measurement started by
    /// [`Profiler::hot_start`]; a `None` start is a no-op.
    pub fn hot_add(&mut self, name: &'static str, start: Option<Instant>) {
        if let Some(s) = start {
            self.add(name, s.elapsed());
        }
    }

    /// Runs `f` and returns its result together with the measured wall
    /// time, *without* attributing it to a region. For coarse
    /// once-per-solve measurement that stays on even when hot-loop
    /// timing is off.
    pub fn span<R>(&mut self, f: impl FnOnce() -> R) -> (R, Duration) {
        let start = Instant::now();
        let out = f();
        (out, start.elapsed())
    }

    /// Clears all regions and restarts the reference total; the
    /// hot-timing knob is preserved.
    pub fn reset(&mut self) {
        self.regions.clear();
        self.origin = Instant::now();
        self.frozen_total = None;
    }

    /// Runs `f`, attributing its wall-clock time to `name`.
    pub fn time<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.add(name, start.elapsed());
        out
    }

    /// Attaches a ring publisher: from now on every region measurement
    /// is also streamed as a nanosecond record (count-and-drop, never
    /// blocking) for an off-thread `MetricMap` to aggregate. Returns the
    /// previously attached publisher, if any.
    pub fn publish_to(&mut self, publisher: MetricPublisher) -> Option<MetricPublisher> {
        self.publisher.replace(publisher)
    }

    /// Detaches and returns the ring publisher, ending streaming. Call
    /// before `Collector::finish` to recover the interned name table
    /// (ids in the collected map index into it).
    pub fn take_publisher(&mut self) -> Option<MetricPublisher> {
        self.publisher.take()
    }

    /// Whether a ring publisher is attached.
    pub fn publishing(&self) -> bool {
        self.publisher.is_some()
    }

    /// Directly adds a measured duration to `name` (for code that cannot be
    /// wrapped in a closure).
    pub fn add(&mut self, name: &'static str, elapsed: Duration) {
        let acc = self.regions.entry(name).or_default();
        acc.total += elapsed;
        acc.calls += 1;
        if let Some(publisher) = self.publisher.as_mut() {
            let id = publisher.metric_id(name);
            publisher.publish(id, elapsed.as_nanos() as u64);
        }
    }

    /// Merges a pre-aggregated measurement (e.g. a [`HotRegion`] drained
    /// after a solve) into `name`.
    pub fn add_many(&mut self, name: &'static str, total: Duration, calls: u64) {
        let acc = self.regions.entry(name).or_default();
        acc.total += total;
        acc.calls += calls;
    }

    /// Freezes the reference total at the current elapsed span. Call when
    /// the kernel's ROI ends so later queries don't dilute fractions.
    pub fn freeze_total(&mut self) {
        self.frozen_total = Some(self.origin.elapsed());
    }

    /// The reference total used for fractions.
    pub fn total(&self) -> Duration {
        self.frozen_total.unwrap_or_else(|| self.origin.elapsed())
    }

    /// Total time attributed to `name` (zero when never entered).
    pub fn region_total(&self, name: &str) -> Duration {
        self.regions
            .get(name)
            .map(|a| a.total)
            .unwrap_or(Duration::ZERO)
    }

    /// Number of entries into `name`.
    pub fn region_calls(&self, name: &str) -> u64 {
        self.regions.get(name).map(|a| a.calls).unwrap_or(0)
    }

    /// Share of the reference total spent in `name`, in `[0, 1]`.
    pub fn fraction(&self, name: &str) -> f64 {
        let total = self.total().as_secs_f64();
        if total <= 0.0 {
            return 0.0;
        }
        (self.region_total(name).as_secs_f64() / total).min(1.0)
    }

    /// All regions, sorted by descending total time.
    pub fn report(&self) -> Vec<RegionReport> {
        let mut out: Vec<RegionReport> = self
            .regions
            .iter()
            .map(|(&name, acc)| RegionReport {
                name: name.to_owned(),
                total: acc.total,
                calls: acc.calls,
                fraction: self.fraction(name),
            })
            .collect();
        // Name is the tie-break so report order never depends on hash
        // iteration order.
        out.sort_by(|a, b| b.total.cmp(&a.total).then_with(|| a.name.cmp(&b.name)));
        out
    }

    /// The region with the largest total time, if any — the kernel's
    /// measured bottleneck for Table I.
    pub fn dominant_region(&self) -> Option<RegionReport> {
        self.report().into_iter().next()
    }
}

/// A hot-loop accumulator for contexts that only hold `&self`.
///
/// Search-space structs (`pp2d` collision checks, `pfl` ray casts, the
/// symbolic successor generator) are called through shared references,
/// so they cannot reach a `&mut Profiler` per iteration. They own a
/// `HotRegion` instead: `Cell`-based interior mutability, the same
/// off-by-default knob as [`Profiler::hot_start`], and a
/// [`HotRegion::drain_into`] that merges the aggregate into a profiler
/// after the solve.
#[derive(Debug, Default)]
pub struct HotRegion {
    enabled: bool,
    total: Cell<Duration>,
    calls: Cell<u64>,
}

impl HotRegion {
    /// A disabled region: `start`/`add` never read the clock.
    pub fn new() -> Self {
        HotRegion::default()
    }

    /// An enabled region, for bottleneck-fraction runs. Pass
    /// `profiler.hot_timing()` to inherit the profiler's knob.
    pub fn timed(enabled: bool) -> Self {
        HotRegion {
            enabled,
            ..HotRegion::default()
        }
    }

    /// Starts one measurement (`None` when disabled — no clock read).
    pub fn start(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Completes a measurement started by [`HotRegion::start`].
    pub fn add(&self, start: Option<Instant>) {
        if let Some(s) = start {
            self.total.set(self.total.get() + s.elapsed());
            self.calls.set(self.calls.get() + 1);
        }
    }

    /// Accumulated time.
    pub fn total(&self) -> Duration {
        self.total.get()
    }

    /// Number of completed measurements.
    pub fn calls(&self) -> u64 {
        self.calls.get()
    }

    /// Merges the aggregate into `profiler` under `name` and clears the
    /// accumulator.
    pub fn drain_into(&self, profiler: &mut Profiler, name: &'static str) {
        if self.calls.get() > 0 {
            profiler.add_many(name, self.total.get(), self.calls.get());
        }
        self.total.set(Duration::ZERO);
        self.calls.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_accumulates_and_counts() {
        let mut p = Profiler::new();
        for _ in 0..3 {
            p.time("r", || std::thread::sleep(Duration::from_millis(1)));
        }
        assert_eq!(p.region_calls("r"), 3);
        assert!(p.region_total("r") >= Duration::from_millis(3));
    }

    #[test]
    fn unknown_region_is_zero() {
        let p = Profiler::new();
        assert_eq!(p.region_total("none"), Duration::ZERO);
        assert_eq!(p.region_calls("none"), 0);
        assert_eq!(p.fraction("none"), 0.0);
    }

    #[test]
    fn fractions_reflect_relative_cost() {
        let mut p = Profiler::new();
        p.time("big", || std::thread::sleep(Duration::from_millis(20)));
        p.time("small", || std::thread::sleep(Duration::from_millis(2)));
        p.freeze_total();
        assert!(p.fraction("big") > 0.5);
        assert!(p.fraction("small") < 0.5);
        assert!(p.fraction("big") <= 1.0);
    }

    #[test]
    fn dominant_region_is_largest() {
        let mut p = Profiler::new();
        p.add("a", Duration::from_millis(5));
        p.add("b", Duration::from_millis(50));
        p.add("c", Duration::from_millis(1));
        assert_eq!(p.dominant_region().unwrap().name, "b");
        let names: Vec<String> = p.report().into_iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["b", "a", "c"]);
    }

    #[test]
    fn freeze_total_stops_dilution() {
        let mut p = Profiler::new();
        p.add("x", Duration::from_millis(10));
        p.freeze_total();
        let before = p.fraction("x");
        std::thread::sleep(Duration::from_millis(10));
        let after = p.fraction("x");
        assert_eq!(before, after);
    }

    #[test]
    fn reset_clears_everything() {
        let mut p = Profiler::new();
        p.add("x", Duration::from_millis(10));
        p.reset();
        assert!(p.report().is_empty());
        assert_eq!(p.region_total("x"), Duration::ZERO);
    }

    #[test]
    fn time_returns_closure_value() {
        let mut p = Profiler::new();
        assert_eq!(p.time("calc", || 6 * 7), 42);
    }

    #[test]
    fn hot_hooks_are_noops_by_default() {
        let mut p = Profiler::new();
        assert!(!p.hot_timing());
        let start = p.hot_start();
        assert!(start.is_none());
        p.hot_add("hot", start);
        assert_eq!(p.region_calls("hot"), 0);
        assert_eq!(p.region_total("hot"), Duration::ZERO);
    }

    #[test]
    fn hot_hooks_measure_when_timed() {
        let mut p = Profiler::timed();
        assert!(p.hot_timing());
        let start = p.hot_start();
        assert!(start.is_some());
        std::thread::sleep(Duration::from_millis(1));
        p.hot_add("hot", start);
        assert_eq!(p.region_calls("hot"), 1);
        assert!(p.region_total("hot") >= Duration::from_millis(1));
    }

    #[test]
    fn span_measures_even_without_hot_timing() {
        let mut p = Profiler::new();
        let (out, elapsed) = p.span(|| {
            std::thread::sleep(Duration::from_millis(2));
            7
        });
        assert_eq!(out, 7);
        assert!(elapsed >= Duration::from_millis(2));
    }

    #[test]
    fn reset_preserves_hot_knob() {
        let mut p = Profiler::timed();
        p.add("x", Duration::from_millis(1));
        p.reset();
        assert!(p.hot_timing());
        assert!(p.report().is_empty());
    }

    #[test]
    fn hot_region_respects_knob_and_drains() {
        let off = HotRegion::new();
        off.add(off.start());
        assert_eq!(off.calls(), 0);

        let on = HotRegion::timed(true);
        let s = on.start();
        std::thread::sleep(Duration::from_millis(1));
        on.add(s);
        assert_eq!(on.calls(), 1);
        assert!(on.total() >= Duration::from_millis(1));

        let mut p = Profiler::timed();
        on.drain_into(&mut p, "region");
        assert_eq!(p.region_calls("region"), 1);
        assert_eq!(on.calls(), 0, "drain clears the accumulator");
        assert_eq!(on.total(), Duration::ZERO);
    }

    #[test]
    fn add_many_merges_aggregates() {
        let mut p = Profiler::new();
        p.add_many("r", Duration::from_millis(30), 3);
        p.add_many("r", Duration::from_millis(10), 1);
        assert_eq!(p.region_calls("r"), 4);
        assert_eq!(p.region_total("r"), Duration::from_millis(40));
    }
}

//! Named-region wall-clock profiling.
//!
//! Every per-kernel bottleneck number in the paper ("67 % to 78 % of the
//! entire execution time is spent in ray-casting", "more than 65 % ... in
//! collision detection") is a *region time fraction*. The kernels in this
//! suite wrap their candidate-bottleneck code in profiler regions and the
//! experiment binaries print the fractions.

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Accumulated timing for one named region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionReport {
    /// Region name.
    pub name: String,
    /// Total time spent inside the region.
    pub total: Duration,
    /// Number of times the region was entered.
    pub calls: u64,
    /// Share of the profiler's reference total, in `[0, 1]`.
    pub fraction: f64,
}

#[derive(Debug, Default, Clone)]
struct RegionAcc {
    total: Duration,
    calls: u64,
}

/// A flat named-region profiler.
///
/// Regions are identified by `&'static str` names. Time spent in a region
/// is attributed exclusively to that region (kernels keep their regions
/// non-overlapping, matching how the paper attributes execution time).
/// Fractions are computed against a *reference total*: the profiler's own
/// observed span from construction (or [`Profiler::reset`]) to the moment
/// of the query, so un-instrumented code shows up as a smaller fraction
/// for every region rather than being silently ignored.
///
/// # Example
///
/// ```
/// use rtr_harness::Profiler;
///
/// let mut p = Profiler::new();
/// p.time("hot", || std::thread::sleep(std::time::Duration::from_millis(5)));
/// p.time("cold", || ());
/// assert!(p.fraction("hot") > p.fraction("cold"));
/// ```
#[derive(Debug, Clone)]
pub struct Profiler {
    regions: HashMap<&'static str, RegionAcc>,
    origin: Instant,
    /// When set, used instead of `origin.elapsed()` as the denominator —
    /// lets experiment code freeze the total at kernel completion.
    frozen_total: Option<Duration>,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

impl Profiler {
    /// Creates a profiler; the reference total starts accumulating now.
    pub fn new() -> Self {
        Profiler {
            regions: HashMap::new(),
            origin: Instant::now(),
            frozen_total: None,
        }
    }

    /// Clears all regions and restarts the reference total.
    pub fn reset(&mut self) {
        self.regions.clear();
        self.origin = Instant::now();
        self.frozen_total = None;
    }

    /// Runs `f`, attributing its wall-clock time to `name`.
    pub fn time<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.add(name, start.elapsed());
        out
    }

    /// Directly adds a measured duration to `name` (for code that cannot be
    /// wrapped in a closure).
    pub fn add(&mut self, name: &'static str, elapsed: Duration) {
        let acc = self.regions.entry(name).or_default();
        acc.total += elapsed;
        acc.calls += 1;
    }

    /// Freezes the reference total at the current elapsed span. Call when
    /// the kernel's ROI ends so later queries don't dilute fractions.
    pub fn freeze_total(&mut self) {
        self.frozen_total = Some(self.origin.elapsed());
    }

    /// The reference total used for fractions.
    pub fn total(&self) -> Duration {
        self.frozen_total.unwrap_or_else(|| self.origin.elapsed())
    }

    /// Total time attributed to `name` (zero when never entered).
    pub fn region_total(&self, name: &str) -> Duration {
        self.regions
            .get(name)
            .map(|a| a.total)
            .unwrap_or(Duration::ZERO)
    }

    /// Number of entries into `name`.
    pub fn region_calls(&self, name: &str) -> u64 {
        self.regions.get(name).map(|a| a.calls).unwrap_or(0)
    }

    /// Share of the reference total spent in `name`, in `[0, 1]`.
    pub fn fraction(&self, name: &str) -> f64 {
        let total = self.total().as_secs_f64();
        if total <= 0.0 {
            return 0.0;
        }
        (self.region_total(name).as_secs_f64() / total).min(1.0)
    }

    /// All regions, sorted by descending total time.
    pub fn report(&self) -> Vec<RegionReport> {
        let mut out: Vec<RegionReport> = self
            .regions
            .iter()
            .map(|(&name, acc)| RegionReport {
                name: name.to_owned(),
                total: acc.total,
                calls: acc.calls,
                fraction: self.fraction(name),
            })
            .collect();
        out.sort_by_key(|r| std::cmp::Reverse(r.total));
        out
    }

    /// The region with the largest total time, if any — the kernel's
    /// measured bottleneck for Table I.
    pub fn dominant_region(&self) -> Option<RegionReport> {
        self.report().into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_accumulates_and_counts() {
        let mut p = Profiler::new();
        for _ in 0..3 {
            p.time("r", || std::thread::sleep(Duration::from_millis(1)));
        }
        assert_eq!(p.region_calls("r"), 3);
        assert!(p.region_total("r") >= Duration::from_millis(3));
    }

    #[test]
    fn unknown_region_is_zero() {
        let p = Profiler::new();
        assert_eq!(p.region_total("none"), Duration::ZERO);
        assert_eq!(p.region_calls("none"), 0);
        assert_eq!(p.fraction("none"), 0.0);
    }

    #[test]
    fn fractions_reflect_relative_cost() {
        let mut p = Profiler::new();
        p.time("big", || std::thread::sleep(Duration::from_millis(20)));
        p.time("small", || std::thread::sleep(Duration::from_millis(2)));
        p.freeze_total();
        assert!(p.fraction("big") > 0.5);
        assert!(p.fraction("small") < 0.5);
        assert!(p.fraction("big") <= 1.0);
    }

    #[test]
    fn dominant_region_is_largest() {
        let mut p = Profiler::new();
        p.add("a", Duration::from_millis(5));
        p.add("b", Duration::from_millis(50));
        p.add("c", Duration::from_millis(1));
        assert_eq!(p.dominant_region().unwrap().name, "b");
        let names: Vec<String> = p.report().into_iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["b", "a", "c"]);
    }

    #[test]
    fn freeze_total_stops_dilution() {
        let mut p = Profiler::new();
        p.add("x", Duration::from_millis(10));
        p.freeze_total();
        let before = p.fraction("x");
        std::thread::sleep(Duration::from_millis(10));
        let after = p.fraction("x");
        assert_eq!(before, after);
    }

    #[test]
    fn reset_clears_everything() {
        let mut p = Profiler::new();
        p.add("x", Duration::from_millis(10));
        p.reset();
        assert!(p.report().is_empty());
        assert_eq!(p.region_total("x"), Duration::ZERO);
    }

    #[test]
    fn time_returns_closure_value() {
        let mut p = Profiler::new();
        assert_eq!(p.time("calc", || 6 * 7), 42);
    }
}

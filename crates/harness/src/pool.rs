//! Deterministic scoped worker pool for the kernel hot paths.
//!
//! The paper's kernels are dominated by embarrassingly parallel inner
//! loops (per-particle ray casting in PFL, per-node neighbor search in
//! PRM, per-point correspondence search in ICP, per-sample rollouts in
//! CEM). This module parallelizes them **without changing results**:
//!
//! - **Fixed chunk decomposition.** [`chunk_boundaries`] derives chunk
//!   ranges purely from `(len, parts)` — never from runtime load — so a
//!   given input always decomposes the same way.
//! - **Order-preserving assembly.** [`Pool::par_map`] evaluates a pure
//!   function element-wise and reassembles outputs in input order, so the
//!   result `Vec` is identical to a sequential `map`. Any floating-point
//!   *reduction* over the outputs stays with the caller, sequential and in
//!   legacy order; f64 addition is not associative, and keeping reductions
//!   linear is what makes parallel runs bit-identical to sequential runs
//!   for **any** thread count.
//! - **Per-chunk seed streams.** For workloads that need randomness inside
//!   a parallel region, [`chunk_seed`] derives an independent stream seed
//!   from `(base_seed, chunk_index)`. Because chunk boundaries are fixed,
//!   the streams — and therefore the results — do not depend on how many
//!   threads execute the chunks.
//!
//! A pool with one thread (see [`Pool::sequential`]) runs the caller's
//! closure inline without spawning, which is the exact legacy code path.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::panic::resume_unwind;

/// Returns the fixed chunk decomposition of `0..len` into `parts` balanced
/// contiguous ranges (sizes differ by at most one; empty ranges are kept so
/// chunk indices are stable).
///
/// The decomposition depends only on `(len, parts)`: it is the anchor for
/// every determinism guarantee in this module.
pub fn chunk_boundaries(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1);
    (0..parts)
        .map(|c| (c * len / parts)..((c + 1) * len / parts))
        .collect()
}

/// Derives the RNG stream seed for one chunk of a decomposed loop.
///
/// SplitMix64-style mixing of `(base_seed, chunk_index)`: well-spread,
/// deterministic, and independent of thread count because chunk indices
/// come from [`chunk_boundaries`].
pub fn chunk_seed(base_seed: u64, chunk_index: u64) -> u64 {
    let mut z = base_seed ^ chunk_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A scoped worker pool with a fixed thread count.
///
/// `Pool` owns no threads; each parallel call spawns scoped workers that
/// borrow from the caller's stack and are joined before the call returns,
/// so there is no cross-call state and no shutdown protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new(0)
    }
}

impl Pool {
    /// Creates a pool with `threads` workers; `0` means one worker per
    /// available hardware thread.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
        } else {
            threads
        };
        Pool { threads }
    }

    /// The single-threaded pool: every parallel primitive degenerates to a
    /// plain inline loop — the exact legacy sequential path.
    pub fn sequential() -> Self {
        Pool { threads: 1 }
    }

    /// Number of worker threads this pool uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` in parallel, returning outputs in input order.
    ///
    /// `f` receives `(index, &item)` and must be pure with respect to the
    /// shared borrows it captures; under that contract the result is
    /// element-for-element identical to the sequential
    /// `items.iter().enumerate().map(..)` loop, regardless of thread count.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let bounds = chunk_boundaries(items.len(), self.threads.min(items.len()));
        let f = &f;
        let result = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = bounds
                .iter()
                .filter(|r| !r.is_empty())
                .map(|r| {
                    let range = r.clone();
                    scope.spawn(move |_| {
                        items[range.clone()]
                            .iter()
                            .enumerate()
                            .map(|(off, t)| f(range.start + off, t))
                            .collect::<Vec<U>>()
                    })
                })
                .collect();
            let mut out = Vec::with_capacity(items.len());
            for handle in handles {
                match handle.join() {
                    Ok(part) => out.extend(part),
                    Err(payload) => resume_unwind(payload),
                }
            }
            out
        });
        match result {
            Ok(out) => out,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// [`Pool::par_map`] into a caller-owned buffer: `out` is cleared,
    /// resized to `items.len()` with `U::default()` placeholders, and
    /// every slot is overwritten with `f(index, &item)`.
    ///
    /// Outputs are element-for-element identical to [`Pool::par_map`]
    /// (same `f`, same order), but the buffer is reused across calls, so
    /// a steady-state caller that keeps `out` alive allocates nothing
    /// once the buffer has grown to its high-water length — the workspace
    /// convention the stepped kernel instances rely on.
    pub fn par_map_into<T, U, F>(&self, items: &[T], out: &mut Vec<U>, f: F)
    where
        T: Sync,
        U: Send + Default,
        F: Fn(usize, &T) -> U + Sync,
    {
        out.clear();
        out.resize_with(items.len(), U::default);
        if self.threads == 1 || items.len() <= 1 {
            for (i, (slot, item)) in out.iter_mut().zip(items).enumerate() {
                *slot = f(i, item);
            }
            return;
        }
        self.par_chunks_mut(out, |_, start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                let i = start + off;
                *slot = f(i, &items[i]);
            }
        });
    }

    /// Runs `f` over disjoint mutable chunks of `data` in parallel.
    ///
    /// The decomposition comes from [`chunk_boundaries`]`(data.len(),
    /// threads)`; `f` receives `(chunk_index, chunk_start, chunk)`. Pair
    /// with [`chunk_seed`] when the chunk body needs its own RNG stream.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, usize, &mut [T]) + Sync,
    {
        let bounds = chunk_boundaries(data.len(), self.threads.min(data.len().max(1)));
        if self.threads == 1 || data.len() <= 1 {
            for (c, r) in bounds.iter().enumerate() {
                f(c, r.start, &mut data[r.clone()]);
            }
            return;
        }
        // Carve `data` into the chunk slices up front; the scoped workers
        // then each own exactly one disjoint `&mut [T]`.
        let mut chunks: Vec<(usize, usize, &mut [T])> = Vec::with_capacity(bounds.len());
        let mut rest = data;
        let mut consumed = 0usize;
        for (c, r) in bounds.iter().enumerate() {
            let (head, tail) = rest.split_at_mut(r.end - consumed);
            consumed = r.end;
            rest = tail;
            if !head.is_empty() {
                chunks.push((c, r.start, head));
            }
        }
        let f = &f;
        let result = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|(c, start, chunk)| scope.spawn(move |_| f(c, start, chunk)))
                .collect();
            for handle in handles {
                if let Err(payload) = handle.join() {
                    resume_unwind(payload);
                }
            }
        });
        if let Err(payload) = result {
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_partition_exactly() {
        for len in [0usize, 1, 2, 7, 8, 100, 101] {
            for parts in [1usize, 2, 3, 4, 8, 13] {
                let bounds = chunk_boundaries(len, parts);
                assert_eq!(bounds.len(), parts);
                assert_eq!(bounds[0].start, 0);
                assert_eq!(bounds[parts - 1].end, len);
                for w in bounds.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                let sizes: Vec<usize> = bounds.iter().map(|r| r.len()).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced: {sizes:?}");
            }
        }
    }

    #[test]
    fn par_map_matches_sequential_for_all_thread_counts() {
        let items: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
        let reference: Vec<f64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| x * 1.5 + i as f64)
            .collect();
        for threads in [1usize, 2, 3, 4, 8, 32] {
            let out = Pool::new(threads).par_map(&items, |i, x| x * 1.5 + i as f64);
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_tiny_inputs() {
        let pool = Pool::new(8);
        assert_eq!(pool.par_map(&[] as &[i32], |_, x| *x), Vec::<i32>::new());
        assert_eq!(pool.par_map(&[5], |i, x| x + i as i32), vec![5]);
        assert_eq!(pool.par_map(&[1, 2], |_, x| x * 2), vec![2, 4]);
    }

    #[test]
    fn par_map_into_matches_par_map_and_reuses_the_buffer() {
        let items: Vec<f64> = (0..257).map(|i| (i as f64).cos()).collect();
        for threads in [1usize, 2, 4, 7] {
            let pool = Pool::new(threads);
            let reference = pool.par_map(&items, |i, x| x * 2.0 - i as f64);
            let mut out = Vec::new();
            pool.par_map_into(&items, &mut out, |i, x| x * 2.0 - i as f64);
            assert_eq!(out, reference, "threads = {threads}");
            let cap = out.capacity();
            pool.par_map_into(&items, &mut out, |i, x| x * 2.0 - i as f64);
            assert_eq!(out.capacity(), cap, "steady state must not regrow");
            assert_eq!(out, reference);
            // Shrinking inputs reuse the same buffer.
            pool.par_map_into(&items[..3], &mut out, |i, x| x * 2.0 - i as f64);
            assert_eq!(out.len(), 3);
            assert_eq!(out.capacity(), cap);
        }
    }

    #[test]
    fn par_chunks_mut_covers_every_element_once() {
        for threads in [1usize, 2, 4, 7] {
            let mut data = vec![0u32; 103];
            Pool::new(threads).par_chunks_mut(&mut data, |_, start, chunk| {
                for (off, v) in chunk.iter_mut().enumerate() {
                    *v += (start + off) as u32 + 1;
                }
            });
            assert!(
                data.iter().enumerate().all(|(i, &v)| v == i as u32 + 1),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn par_chunks_mut_chunk_indices_match_boundaries() {
        let mut data = vec![usize::MAX; 64];
        Pool::new(4).par_chunks_mut(&mut data, |c, _, chunk| chunk.fill(c));
        let bounds = chunk_boundaries(64, 4);
        for (c, r) in bounds.iter().enumerate() {
            assert!(data[r.clone()].iter().all(|&v| v == c));
        }
    }

    #[test]
    fn chunk_seeds_are_stable_and_spread() {
        assert_eq!(chunk_seed(42, 3), chunk_seed(42, 3));
        let seeds: Vec<u64> = (0..64).map(|c| chunk_seed(7, c)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn zero_threads_means_auto() {
        assert!(Pool::new(0).threads() >= 1);
        assert_eq!(Pool::sequential().threads(), 1);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).par_map(&[1, 2, 3, 4, 5, 6, 7, 8], |i, _| {
                assert!(i != 5, "boom");
                i
            });
        });
        assert!(result.is_err());
    }
}

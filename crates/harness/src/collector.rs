//! The telemetry collector: the consumer-side thread of the SPSC ring.
//!
//! The transport inverts where the expensive work happens. On the hot
//! thread, recording a sample is a handful of relaxed stores and one
//! release store into the ring ([`rtr_trace::ring`]); everything costly —
//! the cache-hierarchy walk in `MemorySim`, histogram bucketing in
//! [`MetricMap`](rtr_trace::MetricMap), report writing — lives in a
//! [`RingConsumer`] owned by a `Collector` thread that drains the ring
//! concurrently.
//!
//! # Lifecycle
//!
//! [`Collector::spawn`] takes the ring's reader and the consumer and
//! starts the drain loop; [`Collector::finish`] signals stop, joins, and
//! hands the consumer back with everything it absorbed. The shutdown
//! order matters and is handled here: the drain loop re-drains the ring
//! *after* observing the stop flag, so records pushed right up to the
//! `finish()` call are never stranded. (The producer must still flush
//! its own local batch — e.g. [`RingTrace::flush`](rtr_trace::RingTrace::flush)
//! — before calling `finish`, since the collector cannot see records the
//! producer has not published.)
//!
//! Consumer callbacks run on the collector thread and must not read the
//! wall clock: timing belongs to the producer side, and `rtr-lint`'s
//! `wall-clock` rule scans `consume_batch` bodies in every crate to keep
//! it that way.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use rtr_trace::ring::{RingConsumer, RingItem, RingReader};

/// Items drained per `pop_batch` call; bounds the collector's scratch
/// buffer and the latency between a push and its consumption.
const DRAIN_BATCH: usize = 1024;

/// Empty polls (each a `yield_now`) before the drain loop backs off to
/// sleeping. Yielding keeps drain latency minimal while records flow;
/// the sleep makes an *idle* collector nearly free — important on
/// single-CPU hosts, where a yield loop against a runnable producer
/// degenerates into a context-switch ping-pong that steals a measurable
/// share of the producer's cycles.
const IDLE_SPINS_BEFORE_SLEEP: u32 = 64;

/// How long an idle collector sleeps between polls. Bounds both the
/// worst-case producer stall once the ring fills (the producer's
/// backpressure loop waits at most this long for the sleeping consumer
/// to wake) and the extra latency a `finish()` call can observe.
const IDLE_SLEEP: std::time::Duration = std::time::Duration::from_micros(50);

/// A collector thread draining one SPSC ring into one [`RingConsumer`].
///
/// # Example
///
/// ```
/// use rtr_harness::Collector;
/// use rtr_trace::{metric_channel, MetricMap};
///
/// let (mut publisher, reader) = metric_channel(1 << 10);
/// let collector = Collector::spawn(reader, MetricMap::new());
/// let id = publisher.metric_id("solve.latency_ns");
/// for v in [120u64, 340, 90] {
///     publisher.publish(id, v);
/// }
/// let metrics = collector.finish();
/// assert_eq!(metrics.get(id).unwrap().hist.count(), 3);
/// ```
#[derive(Debug)]
pub struct Collector<C> {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<C>,
}

impl<C> Collector<C> {
    /// Spawns the drain loop over `reader`, feeding `consumer`.
    pub fn spawn<T>(mut reader: RingReader<T>, mut consumer: C) -> Self
    where
        T: RingItem,
        C: RingConsumer<T> + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("rtr-collector".into())
            .spawn(move || {
                // The scratch batch is allocated once; the steady-state
                // drain performs no heap allocation.
                let mut batch: Vec<T> = Vec::with_capacity(DRAIN_BATCH);
                let mut idle_polls = 0u32;
                loop {
                    batch.clear();
                    if reader.pop_batch(&mut batch, DRAIN_BATCH) > 0 {
                        idle_polls = 0;
                        consumer.consume_batch(&batch);
                        continue;
                    }
                    // ORDERING: Acquire — pairs with finish()'s Release
                    // store of the stop flag.
                    if stop_flag.load(Ordering::Acquire) {
                        // Stop observed (so every record published
                        // before `finish()` is already visible): drain
                        // the residue, then exit.
                        loop {
                            batch.clear();
                            if reader.pop_batch(&mut batch, DRAIN_BATCH) == 0 {
                                break;
                            }
                            consumer.consume_batch(&batch);
                        }
                        return consumer;
                    }
                    idle_polls += 1;
                    if idle_polls < IDLE_SPINS_BEFORE_SLEEP {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(IDLE_SLEEP);
                    }
                }
            })
            .expect("spawn rtr-collector thread");
        Collector { stop, handle }
    }

    /// Signals stop, joins the thread, and returns the consumer with
    /// everything published before this call fully absorbed.
    ///
    /// # Panics
    ///
    /// Panics if the collector thread itself panicked (a consumer bug).
    pub fn finish(self) -> C {
        // ORDERING: Release — pairs with the collector thread's Acquire
        // load of the stop flag: everything the caller published before
        // finish() is visible to the final drain.
        self.stop.store(true, Ordering::Release);
        self.handle.join().expect("rtr-collector thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_trace::{metric_channel, ring, MetricMap, TraceOp};

    /// A consumer that appends every op to a vec (test double for the
    /// expensive sinks).
    struct Capture(Vec<TraceOp>);

    impl RingConsumer<TraceOp> for Capture {
        fn consume_batch(&mut self, batch: &[TraceOp]) {
            self.0.extend_from_slice(batch);
        }
    }

    #[test]
    fn collector_drains_everything_published_before_finish() {
        let (mut tx, rx) = ring::<TraceOp>(1 << 8);
        let collector = Collector::spawn(rx, Capture(Vec::new()));
        let ops: Vec<TraceOp> = (0..10_000u64)
            .map(|i| TraceOp {
                addr: i,
                is_write: i % 3 == 0,
            })
            .collect();
        let mut sent = 0;
        while sent < ops.len() {
            sent += tx.try_push_batch(&ops[sent..]);
            if sent < ops.len() {
                std::thread::yield_now();
            }
        }
        let captured = collector.finish().0;
        assert_eq!(
            captured, ops,
            "stream intact and ordered through the thread"
        );
    }

    #[test]
    fn collector_finish_on_empty_ring_returns_immediately() {
        let (_tx, rx) = ring::<TraceOp>(4);
        let collector = Collector::spawn(rx, Capture(Vec::new()));
        assert!(collector.finish().0.is_empty());
    }

    #[test]
    fn metric_channel_feeds_a_metric_map_end_to_end() {
        // Capacity exceeds the 1100 published records, so the test is
        // deterministic even if the collector thread never gets
        // scheduled until `finish`.
        let (mut publisher, rx) = metric_channel(1 << 11);
        let collector = Collector::spawn(rx, MetricMap::new());
        let lat = publisher.metric_id("lat");
        let jit = publisher.metric_id("jit");
        for i in 0..1000u64 {
            publisher.publish(lat, 100 + i);
            if i % 10 == 0 {
                publisher.publish(jit, i);
            }
        }
        let metrics = collector.finish();
        assert_eq!(metrics.len(), 2);
        let lat_m = metrics.get(lat).unwrap();
        assert_eq!(lat_m.hist.count(), 1000);
        assert!(lat_m.hist.p50() >= 100);
        assert!(lat_m.hist.p99() >= lat_m.hist.p50());
        assert_eq!(metrics.get(jit).unwrap().hist.count(), 100);
        assert_eq!(publisher.dropped(), 0);
    }
}

//! Benchmark harness for RTRBench-rs.
//!
//! The paper stresses that kernels must be "easy to simulate": each one
//! ships with a harness that supplies inputs, marks the region of interest
//! (ROI) for the micro-architectural simulator, and exposes every
//! configuration parameter on the command line (§IV, §VI, Fig. 20). This
//! crate is that harness:
//!
//! - [`Roi`] — region-of-interest markers, the zsim-hook analogue. With no
//!   simulator attached they are "safely executed: no effect on correctness
//!   and virtually zero effect on performance".
//! - [`Profiler`] — named-region wall-clock accounting, producing the
//!   time-fraction breakdowns behind Table I and the per-kernel bottleneck
//!   percentages.
//! - [`Args`] — a dependency-free `--key value` command-line parser with
//!   `--help` output in the style of the paper's Fig. 20.
//! - [`Table`] — plain-text report tables for the experiment binaries.
//! - [`Pool`] — deterministic scoped worker pool for the kernel hot
//!   loops: fixed chunk decomposition, order-preserving `par_map`, and
//!   per-chunk seed streams, so parallel runs stay bit-identical to
//!   sequential runs at any thread count.
//! - [`Collector`] — the consumer thread of the lock-free telemetry
//!   transport: drains an `rtr-trace` SPSC ring into an owned
//!   [`RingConsumer`](rtr_trace::ring::RingConsumer) (the cache
//!   simulator, a metric map) off the hot thread.
//!
//! # Example
//!
//! ```
//! use rtr_harness::Profiler;
//!
//! let mut profiler = Profiler::new();
//! let value = profiler.time("compute", || (0..1000).sum::<u64>());
//! assert_eq!(value, 499_500);
//! assert!(profiler.region_calls("compute") == 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cli;
mod collector;
mod pool;
mod profiler;
mod roi;
mod table;

pub use cli::{Args, CliError, OptionSpec};
pub use collector::Collector;
pub use pool::{chunk_boundaries, chunk_seed, Pool};
pub use profiler::{HotRegion, Profiler, RegionReport};
pub use roi::Roi;
pub use table::Table;

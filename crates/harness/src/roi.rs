//! Region-of-interest markers — the zsim-hook analogue.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Count of ROI entries across the process, mirroring how zsim hooks mark
/// simulation phases. Exposed so tests (and an attached simulator shim) can
/// observe that markers fired.
static ROI_ENTERED: AtomicU64 = AtomicU64::new(0);
static ROI_EXITED: AtomicU64 = AtomicU64::new(0);

/// A region-of-interest guard.
///
/// In the paper, kernels bracket their measured phase with zsim hooks so
/// the simulator knows which instructions to model; "without zsim ... the
/// harness instructions will be safely executed: no effect on correctness
/// and virtually zero effect on performance." `Roi` reproduces that
/// contract: entering/leaving increments a pair of atomic counters and
/// records wall-clock time, nothing else.
///
/// # Example
///
/// ```
/// use rtr_harness::Roi;
///
/// let roi = Roi::enter("quickstart");
/// let _sum: u64 = (0..10_000).sum();
/// let elapsed = roi.exit();
/// assert!(elapsed.as_nanos() > 0);
/// ```
#[derive(Debug)]
pub struct Roi {
    name: &'static str,
    start: Instant,
    exited: bool,
}

impl Roi {
    /// Enters the region of interest.
    pub fn enter(name: &'static str) -> Self {
        ROI_ENTERED.fetch_add(1, Ordering::Relaxed);
        Roi {
            name,
            start: Instant::now(),
            exited: false,
        }
    }

    /// The region's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Exits the region and returns its wall-clock duration.
    pub fn exit(mut self) -> std::time::Duration {
        self.exited = true;
        ROI_EXITED.fetch_add(1, Ordering::Relaxed);
        self.start.elapsed()
    }

    /// Number of ROI entries observed process-wide.
    pub fn entered_count() -> u64 {
        ROI_ENTERED.load(Ordering::Relaxed)
    }

    /// Number of ROI exits observed process-wide.
    pub fn exited_count() -> u64 {
        ROI_EXITED.load(Ordering::Relaxed)
    }
}

impl Drop for Roi {
    fn drop(&mut self) {
        if !self.exited {
            // Dropping without an explicit exit still closes the region so
            // counters stay balanced (e.g. on early return / panic).
            ROI_EXITED.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_exit_measures_time() {
        let before_in = Roi::entered_count();
        let before_out = Roi::exited_count();
        let roi = Roi::enter("test");
        assert_eq!(roi.name(), "test");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let d = roi.exit();
        assert!(d.as_millis() >= 1);
        assert_eq!(Roi::entered_count() - before_in, 1);
        assert_eq!(Roi::exited_count() - before_out, 1);
    }

    #[test]
    fn drop_balances_counters() {
        let before_out = Roi::exited_count();
        {
            let _roi = Roi::enter("dropped");
        }
        assert_eq!(Roi::exited_count() - before_out, 1);
    }
}

//! Dependency-free command-line parsing in the style of the paper's
//! Fig. 20 (`./rrt.out --help`).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Description of one `--option <val>` for the help message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptionSpec {
    /// Option name without the leading dashes (e.g. `"epsilon"`).
    pub name: &'static str,
    /// One-line description shown by `--help`.
    pub help: &'static str,
}

/// Errors produced while parsing or reading command-line arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CliError {
    /// An option was given without a value (e.g. trailing `--map`).
    MissingValue(String),
    /// A value could not be parsed as the requested type.
    BadValue {
        /// Option name.
        option: String,
        /// The raw value that failed to parse.
        value: String,
        /// The type that was requested.
        expected: &'static str,
    },
    /// A positional (non `--`) token appeared; the suite's kernels take
    /// options only.
    UnexpectedPositional(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingValue(opt) => write!(f, "option --{opt} requires a value"),
            CliError::BadValue {
                option,
                value,
                expected,
            } => write!(f, "option --{option}: cannot parse {value:?} as {expected}"),
            CliError::UnexpectedPositional(tok) => {
                write!(f, "unexpected positional argument {tok:?}")
            }
        }
    }
}

impl Error for CliError {}

/// Parsed command-line arguments: `--key value` options and `--flag`
/// switches.
///
/// A token starting with `--` is a flag when it is followed by another
/// `--token` (or nothing), and an option when followed by a value. `-h`
/// is accepted as an alias for `--help`, matching the paper's Fig. 20.
///
/// # Example
///
/// ```
/// use rtr_harness::Args;
///
/// let args = Args::parse_tokens(&["--samples", "500", "--map", "map-c", "--verbose"]).unwrap();
/// assert_eq!(args.get_usize("samples", 100).unwrap(), 500);
/// assert_eq!(args.get_str("map", "map-f"), "map-c");
/// assert!(args.get_flag("verbose"));
/// assert_eq!(args.get_f64("epsilon", 0.1).unwrap(), 0.1); // default
/// ```
#[derive(Debug, Clone, Default)]
pub struct Args {
    options: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the process's own arguments (skipping `argv[0]`).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::UnexpectedPositional`] for stray values.
    pub fn parse_env() -> Result<Self, CliError> {
        let tokens: Vec<String> = std::env::args().skip(1).collect();
        let refs: Vec<&str> = tokens.iter().map(String::as_str).collect();
        Self::parse_tokens(&refs)
    }

    /// Parses an explicit token list.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::UnexpectedPositional`] for tokens that are not
    /// options, flags, or option values.
    pub fn parse_tokens(tokens: &[&str]) -> Result<Self, CliError> {
        let mut args = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let tok = tokens[i];
            if tok == "-h" {
                args.flags.push("help".to_owned());
                i += 1;
                continue;
            }
            let Some(name) = tok.strip_prefix("--") else {
                return Err(CliError::UnexpectedPositional(tok.to_owned()));
            };
            match tokens.get(i + 1) {
                Some(val) if !val.starts_with("--") && *val != "-h" => {
                    args.options.insert(name.to_owned(), (*val).to_owned());
                    i += 2;
                }
                _ => {
                    args.flags.push(name.to_owned());
                    i += 1;
                }
            }
        }
        Ok(args)
    }

    /// Returns `true` when `--name` appeared as a switch.
    pub fn get_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Returns `true` when `--help` or `-h` was given.
    pub fn wants_help(&self) -> bool {
        self.get_flag("help")
    }

    /// String option with a default.
    pub fn get_str(&self, name: &str, default: &str) -> String {
        self.options
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_owned())
    }

    fn get_parsed<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, CliError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| CliError::BadValue {
                option: name.to_owned(),
                value: raw.clone(),
                expected,
            }),
        }
    }

    /// `f64` option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::BadValue`] when the value does not parse.
    pub fn get_f64(&self, name: &str, default: f64) -> Result<f64, CliError> {
        self.get_parsed(name, default, "a number")
    }

    /// `usize` option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::BadValue`] when the value does not parse.
    pub fn get_usize(&self, name: &str, default: usize) -> Result<usize, CliError> {
        self.get_parsed(name, default, "a non-negative integer")
    }

    /// `u64` option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::BadValue`] when the value does not parse.
    pub fn get_u64(&self, name: &str, default: u64) -> Result<u64, CliError> {
        self.get_parsed(name, default, "a non-negative integer")
    }

    /// Renders a Fig. 20-style usage message.
    pub fn usage(binary: &str, options: &[OptionSpec]) -> String {
        let mut out = String::new();
        out.push_str("USAGE:\n");
        out.push_str(&format!("  {binary} [OPTIONS] [FLAGS]\n\nOPTIONS:\n"));
        let width = options
            .iter()
            .map(|o| o.name.len())
            .max()
            .unwrap_or(0)
            .max(4);
        for opt in options {
            out.push_str(&format!(
                "  --{:<width$} <val>  {}\n",
                opt.name,
                opt.help,
                width = width
            ));
        }
        out.push_str("\nFLAGS:\n  --help, -h  Print help message\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_and_flags() {
        let args = Args::parse_tokens(&["--bias", "0.05", "--quiet", "--samples", "100"]).unwrap();
        assert_eq!(args.get_f64("bias", 0.0).unwrap(), 0.05);
        assert_eq!(args.get_usize("samples", 0).unwrap(), 100);
        assert!(args.get_flag("quiet"));
        assert!(!args.get_flag("loud"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let args = Args::parse_tokens(&[]).unwrap();
        assert_eq!(args.get_f64("epsilon", 0.25).unwrap(), 0.25);
        assert_eq!(args.get_str("map", "map-f"), "map-f");
        assert!(!args.wants_help());
    }

    #[test]
    fn help_aliases() {
        assert!(Args::parse_tokens(&["--help"]).unwrap().wants_help());
        assert!(Args::parse_tokens(&["-h"]).unwrap().wants_help());
    }

    #[test]
    fn trailing_option_becomes_flag() {
        let args = Args::parse_tokens(&["--verbose"]).unwrap();
        assert!(args.get_flag("verbose"));
    }

    #[test]
    fn bad_value_is_reported() {
        let args = Args::parse_tokens(&["--samples", "many"]).unwrap();
        let err = args.get_usize("samples", 1).unwrap_err();
        assert!(matches!(err, CliError::BadValue { .. }));
        assert!(err.to_string().contains("samples"));
    }

    #[test]
    fn positional_rejected() {
        let err = Args::parse_tokens(&["stray"]).unwrap_err();
        assert!(matches!(err, CliError::UnexpectedPositional(_)));
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        let args = Args::parse_tokens(&["--bias", "-0.5"]).unwrap();
        assert_eq!(args.get_f64("bias", 0.0).unwrap(), -0.5);
    }

    #[test]
    fn usage_mentions_all_options() {
        let spec = [
            OptionSpec {
                name: "map",
                help: "Input map file",
            },
            OptionSpec {
                name: "samples",
                help: "Maximum samples",
            },
        ];
        let text = Args::usage("./rrt.out", &spec);
        assert!(text.contains("--map"));
        assert!(text.contains("Maximum samples"));
        assert!(text.contains("--help, -h"));
    }
}

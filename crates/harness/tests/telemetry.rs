//! End-to-end telemetry transport: `Profiler` measurements streamed
//! through the SPSC ring to an off-thread `Collector` aggregating a
//! `MetricMap`, with quantile sanity on the result.

use std::time::Duration;

use rtr_harness::{Collector, Profiler};
use rtr_trace::{metric_channel, MetricMap};

#[test]
fn profiler_measurements_stream_into_an_off_thread_metric_map() {
    let (publisher, reader) = metric_channel(1 << 12);
    let collector = Collector::spawn(reader, MetricMap::new());

    let mut profiler = Profiler::new();
    assert!(!profiler.publishing());
    assert!(profiler.publish_to(publisher).is_none());
    assert!(profiler.publishing());

    // A synthetic latency population: mostly ~1 µs, a 1-in-100 tail at
    // ~100 µs, attributed via the normal `add` path (what `time`,
    // `hot_add` and `drain_into` all route through).
    for i in 0..2000u64 {
        let nanos = if i % 100 == 99 {
            100_000
        } else {
            1_000 + i % 32
        };
        profiler.add("solve", Duration::from_nanos(nanos));
    }
    profiler.add("setup", Duration::from_nanos(500));

    // The inline aggregate keeps working unchanged alongside publishing.
    assert_eq!(profiler.region_calls("solve"), 2000);
    assert_eq!(profiler.region_calls("setup"), 1);

    let publisher = profiler.take_publisher().expect("publisher attached");
    assert!(!profiler.publishing());
    let names = publisher.names().to_vec();
    assert_eq!(publisher.dropped(), 0, "ring sized for the stream");
    drop(publisher);

    let metrics = collector.finish();
    assert_eq!(metrics.len(), 2);
    let solve_id = names.iter().position(|n| n == "solve").unwrap() as u32;
    let setup_id = names.iter().position(|n| n == "setup").unwrap() as u32;

    let solve = metrics.get(solve_id).expect("solve metric collected");
    assert_eq!(solve.hist.count(), 2000);
    // p50 sits in the ~1 µs bulk, p99.9 in the 100 µs tail; the HDR
    // buckets bound each estimate within 1/32 relative error.
    let p50 = solve.hist.p50();
    assert!((1_000..1_100).contains(&p50), "p50 = {p50}");
    let p999 = solve.hist.p999();
    assert!((100_000..104_000).contains(&p999), "p999 = {p999}");
    assert!(solve.hist.p99() <= p999);

    assert_eq!(metrics.get(setup_id).unwrap().hist.count(), 1);
}

#[test]
fn cloning_a_profiler_does_not_clone_the_publisher() {
    let (publisher, reader) = metric_channel(1 << 4);
    let collector = Collector::spawn(reader, MetricMap::new());
    let mut profiler = Profiler::new();
    profiler.publish_to(publisher);
    profiler.add("r", Duration::from_nanos(42));

    let clone = profiler.clone();
    assert!(!clone.publishing(), "SPSC: the clone starts unattached");
    assert_eq!(clone.region_calls("r"), 1, "aggregates are cloned");

    drop(profiler.take_publisher());
    let metrics = collector.finish();
    assert_eq!(metrics.len(), 1);
}

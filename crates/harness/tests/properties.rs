//! Property-based tests for the harness: CLI round-trips and profiler
//! accounting.

use proptest::prelude::*;
use rtr_harness::{Args, Profiler};
use std::time::Duration;

proptest! {
    #[test]
    fn numeric_options_round_trip(value in -1.0e6..1.0e6f64) {
        let rendered = format!("{value}");
        let args = Args::parse_tokens(&["--x", &rendered]).unwrap();
        let got = args.get_f64("x", 0.0).unwrap();
        prop_assert!((got - value).abs() < 1e-9_f64.max(value.abs() * 1e-12));
    }

    #[test]
    fn usize_options_round_trip(value in 0usize..1_000_000) {
        let rendered = value.to_string();
        let args = Args::parse_tokens(&["--n", &rendered]).unwrap();
        prop_assert_eq!(args.get_usize("n", 0).unwrap(), value);
    }

    #[test]
    fn flags_and_options_do_not_interfere(
        flag_first in prop::bool::ANY,
        n in 0usize..1000,
    ) {
        let rendered = n.to_string();
        let tokens: Vec<&str> = if flag_first {
            vec!["--verbose", "--n", &rendered]
        } else {
            vec!["--n", &rendered, "--verbose"]
        };
        let args = Args::parse_tokens(&tokens).unwrap();
        prop_assert!(args.get_flag("verbose"));
        prop_assert_eq!(args.get_usize("n", usize::MAX).unwrap(), n);
    }

    #[test]
    fn profiler_addition_is_exact(
        durations in prop::collection::vec(0u64..1_000_000, 1..50),
    ) {
        let mut p = Profiler::new();
        let mut expected = Duration::ZERO;
        for &micros in &durations {
            let d = Duration::from_micros(micros);
            p.add("region", d);
            expected += d;
        }
        prop_assert_eq!(p.region_total("region"), expected);
        prop_assert_eq!(p.region_calls("region"), durations.len() as u64);
    }

    #[test]
    fn report_is_sorted_and_complete(
        totals in prop::collection::vec(0u64..1_000_000, 1..10),
    ) {
        let names: Vec<&'static str> = vec![
            "r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9",
        ];
        let mut p = Profiler::new();
        for (i, &micros) in totals.iter().enumerate() {
            p.add(names[i], Duration::from_micros(micros));
        }
        let report = p.report();
        prop_assert_eq!(report.len(), totals.len());
        for w in report.windows(2) {
            prop_assert!(w[0].total >= w[1].total);
        }
        let sum: Duration = report.iter().map(|r| r.total).sum();
        prop_assert_eq!(sum, totals.iter().map(|&m| Duration::from_micros(m)).sum());
    }
}

//! Quickstart: enumerate the suite and run three kernels — one per
//! pipeline stage — with their default, paper-representative inputsets.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rtrbench::harness::{Args, Table};
use rtrbench::suite::registry;

fn main() {
    let kernels = registry();
    println!("RTRBench-rs: {} kernels\n", kernels.len());

    let mut listing = Table::new(&["kernel", "stage", "Table I bottleneck"]);
    for kernel in &kernels {
        listing.row_owned(vec![
            kernel.name().to_owned(),
            kernel.stage().to_string(),
            kernel.table1_bottleneck().to_owned(),
        ]);
    }
    println!("{listing}");

    // One kernel per stage, scaled down a little so the example is snappy.
    let runs: [(&str, &[&str]); 3] = [
        ("02.ekfslam", &["--steps", "200"]),
        ("11.sym-blkw", &["--blocks", "5"]),
        ("15.cem", &["--iterations", "5"]),
    ];
    for (name, tokens) in runs {
        let kernel = kernels
            .iter()
            .find(|k| k.name() == name)
            .expect("kernel registered");
        let args = Args::parse_tokens(tokens).expect("valid tokens");
        match kernel.run(&args) {
            Ok(report) => {
                println!(
                    "{} [{}] — ROI {:.3} s, dominant region: {}",
                    report.name,
                    report.stage,
                    report.roi_seconds,
                    report
                        .dominant_region()
                        .map(|r| format!("{} ({:.0}%)", r.name, r.fraction * 100.0))
                        .unwrap_or_else(|| "n/a".into()),
                );
                for (metric, value) in &report.metrics {
                    println!("    {metric}: {value}");
                }
            }
            Err(err) => println!("{name} failed: {err}"),
        }
        println!();
    }
}

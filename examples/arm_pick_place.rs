//! Arm pick-and-place: the paper's four sampling-based arm planners on the
//! cluttered `Map-C` workspace, head to head.
//!
//! PRM amortizes an offline roadmap over repeated queries (static scenes);
//! RRT answers one-shot queries online (dynamic scenes); RRT* pays more
//! compute for shorter paths; RRT + post-processing splits the difference.
//! This mirrors the paper's §V.07–§V.10 discussion.
//!
//! ```text
//! cargo run --release --example arm_pick_place
//! ```

use rtrbench::harness::Profiler;
use rtrbench::planning::{ArmProblem, Prm, PrmConfig, Rrt, RrtConfig, RrtPp, RrtStar};
use rtrbench::trace::NullTrace;

fn main() {
    let problem = ArmProblem::map_c(2);
    println!(
        "5-DoF arm in Map-C: {} obstacles, start-goal distance {:.2} rad\n",
        problem.obstacles.len(),
        rtrbench::planning::rrt::config_distance(&problem.start, &problem.goal),
    );

    let config = RrtConfig {
        max_samples: 50_000,
        seed: 2,
        ..Default::default()
    };

    // --- PRM: build once, query twice (pick, then place).
    let mut profiler = Profiler::new();
    let prm = Prm::new(PrmConfig {
        roadmap_size: 1200,
        neighbors: 12,
        seed: 3,
        kdtree_build: false,
        threads: 1,
    });
    let t0 = std::time::Instant::now();
    let roadmap = prm.build(&problem, &mut profiler);
    let build_time = t0.elapsed();
    let t1 = std::time::Instant::now();
    let prm_result = prm.query(&problem, &roadmap, &mut profiler, &mut NullTrace);
    let query_time = t1.elapsed();
    match &prm_result {
        Some(r) => println!(
            "PRM     : cost {:.2} rad | offline {:>8.1} ms, online {:>7.2} ms ({} edges)",
            r.cost,
            build_time.as_secs_f64() * 1e3,
            query_time.as_secs_f64() * 1e3,
            roadmap.edge_count
        ),
        None => println!("PRM     : roadmap too sparse for this query"),
    }

    // --- RRT family: one-shot online planners.
    let run = |label: &str, f: &dyn Fn(&mut Profiler) -> Option<(f64, u64)>| {
        let mut p = Profiler::new();
        let t = std::time::Instant::now();
        match f(&mut p) {
            Some((cost, checks)) => println!(
                "{label}: cost {:.2} rad | {:>8.1} ms, {} collision checks",
                cost,
                t.elapsed().as_secs_f64() * 1e3,
                checks
            ),
            None => println!("{label}: failed"),
        }
    };

    run("RRT     ", &|p| {
        Rrt::new(config.clone())
            .plan(&problem, p, &mut NullTrace)
            .map(|r| (r.cost, r.collision_checks))
    });
    run("RRT*    ", &|p| {
        RrtStar::new(RrtConfig {
            max_samples: 12_000,
            ..config.clone()
        })
        .plan(&problem, p, &mut NullTrace)
        .map(|r| (r.base.cost, r.base.collision_checks))
    });
    run("RRT+post", &|p| {
        RrtPp::new(config.clone(), 6)
            .plan(&problem, p, &mut NullTrace)
            .map(|r| (r.base.cost, r.base.collision_checks))
    });

    println!(
        "\nExpected ordering (paper §V.09-§V.10): RRT* shortest, RRT longest,\n\
         post-processed RRT in between — at matching compute budgets."
    );
}

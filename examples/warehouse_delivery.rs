//! Warehouse delivery: the full perception → planning → control pipeline
//! on one robot, exactly the Fig. 1 loop the paper's suite decomposes.
//!
//! A differential-drive robot wakes up with an approximate pose estimate
//! inside a warehouse (the procedural indoor map), localizes itself with
//! the particle filter (`01.pfl`), plans a collision-free route to the
//! loading dock with grid A* (`04.pp2d`), and tracks that route with model
//! predictive control (`14.mpc`).
//!
//! ```text
//! cargo run --release --example warehouse_delivery
//! ```

use rtrbench::control::{Mpc, MpcConfig};
use rtrbench::geom::{maps, Footprint, Point2, Pose2};
use rtrbench::harness::Profiler;
use rtrbench::perception::{ParticleFilter, PflConfig, PflInit};
use rtrbench::planning::{Pp2d, Pp2dConfig};
use rtrbench::sim::{DifferentialDrive, Lidar, OdometryModel, SimRng};
use rtrbench::trace::NullTrace;

fn main() {
    let map = maps::indoor_floor_plan(256, 0.1, 7);
    println!(
        "warehouse: {:.1} m x {:.1} m, {:.1}% occupied",
        map.world_width(),
        map.world_height(),
        map.occupancy_ratio() * 100.0
    );

    // --- Perception: localize while nudging around the aisle.
    let lidar = Lidar::new(60, std::f64::consts::PI, 10.0, 0.02);
    let odometry = OdometryModel::new(0.03, 0.02);
    let robot = DifferentialDrive::new(0.15, 1.5);
    let mut rng = SimRng::seed_from(42);
    let true_start = Pose2::new(1.0, 1.0, 0.0);
    let log = robot.drive(
        &map,
        true_start,
        &[Point2::new(2.5, 1.0), Point2::new(2.5, 2.5)],
        &lidar,
        &odometry,
        120,
        &mut rng,
    );

    let mut profiler = Profiler::new();
    let mut filter = ParticleFilter::new(
        PflConfig {
            particles: 600,
            seed: 7,
            init: PflInit::AroundPose {
                pose: Pose2::new(1.4, 0.7, 0.2), // a rough wake-up guess
                pos_std: 0.6,
                theta_std: 0.4,
            },
            ..Default::default()
        },
        &map,
    );
    let loc = filter.run(&log, &mut profiler, &mut NullTrace);
    println!(
        "localized at {} (error {:.2} m, spread {:.2} m, {} rays cast)",
        loc.estimate,
        loc.final_error.unwrap_or(f64::NAN),
        loc.final_spread,
        loc.rays_cast
    );

    // --- Planning: route from the estimated pose to the loading dock.
    let start_cell = map
        .world_to_cell(loc.estimate.position())
        .expect("estimate inside the map");
    let dock = (240usize, 240usize); // far-corner room
    let plan = Pp2d::new(Pp2dConfig {
        start: start_cell,
        goal: dock,
        footprint: Footprint::new(0.6, 0.4), // a compact AGV
        weight: 1.5,
    })
    .plan(&map, &mut profiler, &mut NullTrace)
    .expect("dock reachable");
    println!(
        "planned {:.1} m route, {} cells, {} collision checks",
        plan.cost,
        plan.path.len(),
        plan.collision_checks
    );

    // --- Control: MPC-track the planned route (subsampled as reference).
    let reference: Vec<Point2> = plan
        .path
        .iter()
        .step_by(4)
        .map(|&(x, y)| map.cell_center(x, y))
        .collect();
    let tracking = Mpc::new(MpcConfig {
        v_max: 2.0,
        ..Default::default()
    })
    .track(&reference, &mut profiler, &mut NullTrace);
    println!(
        "tracked route: mean error {:.2} m, max speed {:.2} m/s, {} optimizer iterations",
        tracking.mean_tracking_error, tracking.max_speed, tracking.opt_iterations
    );

    // A low-resolution floor plan with the planned route overlaid.
    println!("\nroute overview ('#' walls, '*' route):");
    print!("{}", maps::render_ascii(&map, &plan.path, 64));

    // --- Where did the time go? (The paper's per-kernel breakdowns.)
    profiler.freeze_total();
    println!("\npipeline time breakdown:");
    for region in profiler.report() {
        println!(
            "  {:<22} {:>9.1} ms  ({:>4.1}%)",
            region.name,
            region.total.as_secs_f64() * 1e3,
            region.fraction * 100.0
        );
    }
}

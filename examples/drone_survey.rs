//! Drone survey: 3D path planning over the procedural campus (`05.pp3d`)
//! plus a moving-target interception (`06.movtar`).
//!
//! A UAV visits a ring of survey waypoints over the campus, then drops to
//! 2D pursuit mode to intercept a ground vehicle whose route is known —
//! the paper's "catching a moving target" problem with the backward-
//! Dijkstra heuristic.
//!
//! ```text
//! cargo run --release --example drone_survey
//! ```

use rtrbench::geom::maps;
use rtrbench::harness::Profiler;
use rtrbench::planning::{movtar, MovingTarget, MovtarConfig, Pp3d, Pp3dConfig};
use rtrbench::trace::NullTrace;

fn main() {
    let size = 96usize;
    let map = maps::campus_3d(size, size, 16, 1.0, 11);
    println!(
        "campus: {size} m x {size} m x 16 m, {} occupied cells",
        map.occupied_count()
    );

    // --- Survey: fly a ring of waypoints at cruise altitude.
    let cruise = 10usize;
    let waypoints = [
        (1, 1, cruise),
        (size - 2, 1, cruise),
        (size - 2, size - 2, cruise),
        (1, size - 2, cruise),
        (1, 1, cruise),
    ];
    let mut profiler = Profiler::new();
    let mut total_cost = 0.0;
    let mut total_expanded = 0u64;
    for leg in waypoints.windows(2) {
        let plan = Pp3d::new(Pp3dConfig {
            start: leg[0],
            goal: leg[1],
            weight: 1.5,
        })
        .plan(&map, &mut profiler, &mut NullTrace)
        .expect("campus airspace is connected");
        println!(
            "leg {:?} -> {:?}: {:.1} m, {} expansions",
            leg[0], leg[1], plan.cost, plan.expanded
        );
        total_cost += plan.cost;
        total_expanded += plan.expanded;
    }
    println!("survey total: {total_cost:.1} m over {total_expanded} expansions\n");

    // --- Pursuit: intercept a ground vehicle with a known route.
    let (field, start, trajectory) = movtar::synthetic_scenario(96, 192, 3);
    let result = MovingTarget::new(MovtarConfig {
        start,
        target_trajectory: trajectory,
        epsilon: 2.0,
    })
    .plan(&field, &mut profiler, &mut NullTrace)
    .expect("target catchable");
    println!(
        "intercepted target at t={} (path cost {:.1}, {} expansions, {} heuristic cells)",
        result.catch_time, result.cost, result.expanded, result.heuristic_cells
    );

    profiler.freeze_total();
    println!("\ntime breakdown:");
    for region in profiler.report() {
        println!(
            "  {:<22} {:>9.1} ms  ({:>4.1}%)",
            region.name,
            region.total.as_secs_f64() * 1e3,
            region.fraction * 100.0
        );
    }
}

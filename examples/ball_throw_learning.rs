//! Ball-throw learning: `15.cem` vs `16.bo` on the projectile simulator
//! that stands in for the paper's V-REP scene.
//!
//! Prints the reward-over-samples curves of the paper's Figs. 18 and 19 as
//! ASCII sparklines, and contrasts the two learners' compute profiles.
//!
//! ```text
//! cargo run --release --example ball_throw_learning
//! ```

use rtrbench::control::{BayesOpt, BoConfig, Cem, CemConfig};
use rtrbench::harness::Profiler;
use rtrbench::sim::ThrowSim;
use rtrbench::trace::NullTrace;

/// Renders rewards (≤ 0, higher is better) as a coarse ASCII sparkline.
fn sparkline(rewards: &[f64]) -> String {
    const LEVELS: &[u8] = b" .:-=+*#%@";
    let lo = rewards.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = rewards.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-9);
    rewards
        .iter()
        .map(|r| {
            let idx = ((r - lo) / span * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx] as char
        })
        .collect()
}

fn main() {
    let sim = ThrowSim::new(2.0);
    println!("ball-throwing robot: goal at {:.1} m\n", sim.goal_x());

    // --- CEM: 5 iterations x 15 samples (the paper's configuration).
    let mut cem_profiler = Profiler::new();
    let cem = Cem::new(CemConfig::default()).learn(&sim, &mut cem_profiler, &mut NullTrace);
    println!("CEM  (5 x 15 samples, Fig. 18):");
    println!("  rewards |{}|", sparkline(&cem.reward_trace));
    println!(
        "  best reward {:.3} (shoulder {:.2} rad, elbow {:.2} rad, speed {:.2} m/s)",
        cem.best_reward, cem.best_params.shoulder, cem.best_params.elbow, cem.best_params.speed
    );

    // --- BO: 45 iterations with a GP + UCB (the paper's configuration).
    let mut bo_profiler = Profiler::new();
    let bo = BayesOpt::new(BoConfig::default()).learn(&sim, &mut bo_profiler, &mut NullTrace);
    println!("\nBO   (45 iterations, Fig. 19):");
    println!("  rewards |{}|", sparkline(&bo.reward_trace));
    println!(
        "  best reward {:.3} ({} candidates scored)",
        bo.best_reward, bo.candidates_scored
    );

    // --- Compute comparison (the paper: BO is far more intensive and its
    // sort is ~6x CEM's).
    let work = |p: &Profiler| -> f64 { p.report().iter().map(|r| r.total.as_secs_f64()).sum() };
    println!(
        "\ncompute: CEM {:.3} ms vs BO {:.3} ms",
        work(&cem_profiler) * 1e3,
        work(&bo_profiler) * 1e3
    );
    println!(
        "sort time: CEM {:.1} µs vs BO {:.1} µs",
        cem_profiler.region_total("sort").as_secs_f64() * 1e6,
        bo_profiler.region_total("sort").as_secs_f64() * 1e6
    );
}
